//! Dense (array-based) reference implementations.
//!
//! These are the "conventional" exponential representations the paper's
//! introduction contrasts DDs against. They serve two purposes here:
//! cross-validating every DD operation in tests, and acting as an honest
//! array-based baseline in ablation benchmarks.

use ddsim_complex::Complex;

use crate::matrix::{Control, ControlPolarity};

/// A dense state vector over `n` qubits (length `2^n`).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseVector {
    amplitudes: Vec<Complex>,
}

impl DenseVector {
    /// The basis state `|index⟩` over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n` or `n` is 0 or too large to allocate.
    pub fn basis(n: u32, index: u64) -> Self {
        assert!(
            (1..=30).contains(&n),
            "qubit count out of range for dense vector"
        );
        assert!(index < (1u64 << n));
        let mut amplitudes = vec![Complex::ZERO; 1usize << n];
        amplitudes[index as usize] = Complex::ONE;
        DenseVector { amplitudes }
    }

    /// Wraps raw amplitudes (length must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two ≥ 2.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        assert!(amplitudes.len().is_power_of_two() && amplitudes.len() >= 2);
        DenseVector { amplitudes }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.amplitudes.len().trailing_zeros()
    }

    /// Read-only amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Applies a dense matrix: `self ← m × self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn apply(&mut self, m: &DenseMatrix) {
        assert_eq!(m.dim(), self.amplitudes.len());
        let mut out = vec![Complex::ZERO; self.amplitudes.len()];
        for (r, row) in m.rows.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (c, v) in row.iter().enumerate() {
                if !v.is_zero() {
                    acc += *v * self.amplitudes[c];
                }
            }
            out[r] = acc;
        }
        self.amplitudes = out;
    }

    /// Applies the 2x2 matrix `u` to `target` with the given positive
    /// controls, without materializing the full operator — the standard
    /// array-simulator kernel (paper's footnote 1).
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn apply_single_qubit(
        &mut self,
        u: [[Complex; 2]; 2],
        target: u32,
        positive_controls: &[u32],
    ) {
        let n = self.qubits();
        assert!(target < n);
        for &c in positive_controls {
            assert!(c < n && c != target);
        }
        // Qubit q occupies bit (n-1-q) of the basis index.
        let t_bit = 1usize << (n - 1 - target);
        let control_mask: usize = positive_controls
            .iter()
            .map(|&c| 1usize << (n - 1 - c))
            .sum();
        for i in 0..self.amplitudes.len() {
            if i & t_bit == 0 && (i & control_mask) == control_mask {
                let j = i | t_bit;
                let a = self.amplitudes[i];
                let b = self.amplitudes[j];
                self.amplitudes[i] = u[0][0] * a + u[0][1] * b;
                self.amplitudes[j] = u[1][0] * a + u[1][1] * b;
            }
        }
    }

    /// Like [`apply_single_qubit`](Self::apply_single_qubit) but with
    /// polarity-aware controls: positive controls gate on |1⟩, negative
    /// controls on |0⟩.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range or collides with the target.
    pub fn apply_controlled(&mut self, u: [[Complex; 2]; 2], target: u32, controls: &[Control]) {
        let n = self.qubits();
        assert!(target < n);
        let mut pos_mask = 0usize;
        let mut neg_mask = 0usize;
        for c in controls {
            assert!(c.qubit < n && c.qubit != target);
            let bit = 1usize << (n - 1 - c.qubit);
            match c.polarity {
                ControlPolarity::Positive => pos_mask |= bit,
                ControlPolarity::Negative => neg_mask |= bit,
            }
        }
        let t_bit = 1usize << (n - 1 - target);
        for i in 0..self.amplitudes.len() {
            if i & t_bit == 0 && (i & pos_mask) == pos_mask && (i & neg_mask) == 0 {
                let j = i | t_bit;
                let a = self.amplitudes[i];
                let b = self.amplitudes[j];
                self.amplitudes[i] = u[0][0] * a + u[0][1] * b;
                self.amplitudes[j] = u[1][0] * a + u[1][1] * b;
            }
        }
    }

    /// Probability that measuring `qubit` (0 = topmost) yields `1`,
    /// normalized by the total norm (matching
    /// [`DdManager::prob_one`](crate::DdManager::prob_one) semantics on
    /// normalized states).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn prob_one(&self, qubit: u32) -> f64 {
        let n = self.qubits();
        assert!(qubit < n, "measured qubit out of range");
        let q_bit = 1usize << (n - 1 - qubit);
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & q_bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects onto `qubit = outcome` and renormalizes, mirroring
    /// [`DdManager::collapse`](crate::DdManager::collapse).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the outcome has (numerically)
    /// zero probability.
    pub fn collapse(&mut self, qubit: u32, outcome: bool) {
        let n = self.qubits();
        assert!(qubit < n, "measured qubit out of range");
        let p1 = self.prob_one(qubit);
        let p = if outcome { p1 } else { 1.0 - p1 };
        assert!(
            p > 1e-15,
            "collapse onto an outcome with zero probability (p = {p})"
        );
        let q_bit = 1usize << (n - 1 - qubit);
        let scale = Complex::real(1.0 / p.sqrt());
        for (i, a) in self.amplitudes.iter_mut().enumerate() {
            if (i & q_bit != 0) == outcome {
                *a *= scale;
            } else {
                *a = Complex::ZERO;
            }
        }
    }

    /// Measures `qubit`, choosing the outcome with `unit_random ∈ [0, 1)`
    /// exactly as [`DdManager::measure_qubit`](crate::DdManager::measure_qubit)
    /// does (outcome is `1` iff `unit_random < P(1)`), collapses the state,
    /// and returns the outcome. Feeding both backends the same random
    /// stream therefore yields the same outcome sequence.
    pub fn measure(&mut self, qubit: u32, unit_random: f64) -> bool {
        let outcome = unit_random < self.prob_one(qubit);
        self.collapse(qubit, outcome);
        outcome
    }

    /// Resets `qubit` to |0⟩ by measuring it (consuming `unit_random`) and
    /// flipping on outcome `1`, mirroring the DD engine's Reset lowering.
    /// Returns the pre-reset measurement outcome.
    pub fn reset(&mut self, qubit: u32, unit_random: f64) -> bool {
        let outcome = self.measure(qubit, unit_random);
        if outcome {
            let x = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
            self.apply_single_qubit(x, qubit, &[]);
        }
        outcome
    }
}

/// A dense square matrix of power-of-two dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: Vec<Vec<Complex>>,
}

impl DenseMatrix {
    /// The identity over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or too large to allocate.
    pub fn identity(n: u32) -> Self {
        assert!(
            (1..=14).contains(&n),
            "qubit count out of range for dense matrix"
        );
        let dim = 1usize << n;
        let mut rows = vec![vec![Complex::ZERO; dim]; dim];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = Complex::ONE;
        }
        DenseMatrix { rows }
    }

    /// Wraps raw rows (must be square, power-of-two dimension).
    ///
    /// # Panics
    ///
    /// Panics on non-square or non-power-of-two input.
    pub fn from_rows(rows: Vec<Vec<Complex>>) -> Self {
        let dim = rows.len();
        assert!(dim.is_power_of_two() && dim >= 2);
        for row in &rows {
            assert_eq!(row.len(), dim);
        }
        DenseMatrix { rows }
    }

    /// Dimension (`2^n`).
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Read-only rows.
    pub fn rows(&self) -> &[Vec<Complex>] {
        &self.rows
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn mul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.dim(), other.dim());
        let dim = self.dim();
        let mut rows = vec![vec![Complex::ZERO; dim]; dim];
        for (r, row) in rows.iter_mut().enumerate() {
            for k in 0..dim {
                let v = self.rows[r][k];
                if v.is_zero() {
                    continue;
                }
                for (cell, &b) in row.iter_mut().zip(other.rows[k].iter()) {
                    *cell += v * b;
                }
            }
        }
        DenseMatrix { rows }
    }

    /// Maximum component-wise deviation from another matrix.
    pub fn max_deviation(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.dim(), other.dim());
        let mut max = 0.0f64;
        for (ra, rb) in self.rows.iter().zip(other.rows.iter()) {
            for (a, b) in ra.iter().zip(rb.iter()) {
                max = max.max((*a - *b).abs());
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> [[Complex; 2]; 2] {
        let s = Complex::SQRT2_INV;
        [[s, s], [s, -s]]
    }

    fn x() -> [[Complex; 2]; 2] {
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
    }

    #[test]
    fn basis_is_normalized() {
        let v = DenseVector::basis(4, 11);
        assert!((v.norm_sqr() - 1.0).abs() < 1e-15);
        assert!(v.amplitudes()[11].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn bell_state_via_kernels() {
        // Same Example 1 flow as the DD test, on the dense backend.
        let mut v = DenseVector::basis(2, 0b01);
        v.apply_single_qubit(h(), 0, &[]);
        v.apply_single_qubit(x(), 1, &[0]);
        let s = Complex::SQRT2_INV;
        assert!(v.amplitudes()[0b01].approx_eq(s, 1e-12));
        assert!(v.amplitudes()[0b10].approx_eq(s, 1e-12));
    }

    #[test]
    fn matrix_identity_is_neutral() {
        let id = DenseMatrix::identity(3);
        let mut v = DenseVector::basis(3, 5);
        v.apply(&id);
        assert!(v.amplitudes()[5].approx_eq(Complex::ONE, 1e-12));
        let p = id.mul(&id);
        assert!(p.max_deviation(&id) < 1e-15);
    }

    #[test]
    fn negative_control_fires_on_zero() {
        // negctrl(q0) X(q1): |00⟩ → |01⟩, |10⟩ stays.
        let mut v = DenseVector::basis(2, 0b00);
        v.apply_controlled(x(), 1, &[Control::neg(0)]);
        assert!(v.amplitudes()[0b01].approx_eq(Complex::ONE, 1e-12));
        let mut w = DenseVector::basis(2, 0b10);
        w.apply_controlled(x(), 1, &[Control::neg(0)]);
        assert!(w.amplitudes()[0b10].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn measurement_matches_dd_engine_stream() {
        use crate::DdManager;
        // Bell pair, then measure q0 with the same draw on both backends.
        for &draw in &[0.1, 0.9] {
            let mut dense = DenseVector::basis(2, 0);
            dense.apply_single_qubit(h(), 0, &[]);
            dense.apply_single_qubit(x(), 1, &[0]);

            let mut dd = DdManager::new();
            let mut s = dd.vec_basis(2, 0);
            let hm = dd.mat_single_qubit(2, 0, h());
            let cx = dd.mat_controlled(2, &[crate::Control::pos(0)], 1, x());
            s = dd.mat_vec_mul(hm, s).unwrap();
            s = dd.mat_vec_mul(cx, s).unwrap();

            let outcome_dense = dense.measure(0, draw);
            let (outcome_dd, s) = dd.measure_qubit(s, 0, draw);
            assert_eq!(outcome_dense, outcome_dd);
            assert!((dense.norm_sqr() - 1.0).abs() < 1e-12);
            for (idx, a) in dense.amplitudes().iter().enumerate() {
                assert!(
                    dd.vec_amplitude(s, idx as u64).approx_eq(*a, 1e-10),
                    "amplitude {idx} after draw {draw}"
                );
            }
        }
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut v = DenseVector::basis(2, 0);
        v.apply_single_qubit(h(), 0, &[]);
        let outcome = v.reset(0, 0.2); // draw 0.2 < p1 = 0.5 → outcome 1
        assert!(outcome);
        assert!(v.prob_one(0) < 1e-12);
        assert!((v.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_kernel_matches_full_matrix() {
        // CX(control 0, target 1) as kernel vs. explicit matrix.
        let cx = DenseMatrix::from_rows(vec![
            vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO],
            vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO],
            vec![Complex::ZERO, Complex::ZERO, Complex::ZERO, Complex::ONE],
            vec![Complex::ZERO, Complex::ZERO, Complex::ONE, Complex::ZERO],
        ]);
        for idx in 0..4u64 {
            let mut a = DenseVector::basis(2, idx);
            a.apply_single_qubit(x(), 1, &[0]);
            let mut b = DenseVector::basis(2, idx);
            b.apply(&cx);
            assert_eq!(a, b, "basis input {idx}");
        }
    }
}

//! Manager invariant auditor: a full walk of the arenas, unique tables,
//! and complex table that re-derives every structural invariant the
//! kernels rely on. O(nodes) and allocation-heavy — strictly a test/debug
//! facility, called explicitly (never from production paths).
//!
//! Checks, per the canonicity contract in `manager.rs`:
//!
//! 1. **Hash-cons uniqueness** — every live node's `(level, children)` key
//!    maps back to exactly that node in its unique table, no two live
//!    nodes share a key, and the table holds no stale entries (its
//!    population equals the live population).
//! 2. **Normalization** — stored child weights are a *fixpoint* of the
//!    normalization convention: some lane is exactly `ComplexId::ONE`
//!    (the divide's pivot shortcut), all magnitudes are ≤ 1 up to
//!    tolerance-bucketing slack, zero children are the canonical `ZERO`
//!    edge, and no node is all-zero.
//! 3. **Structure** — children sit exactly one level below their parent
//!    (QMDDs never skip levels) and are live (no dangling edges).
//! 4. **Identity flags** — each matrix node's stamped `identity` bit
//!    equals the structural predicate recomputed from its children.
//! 5. **Refcount consistency** — each node's stored count is at least the
//!    number of live parent edges referencing it (the surplus being
//!    external pins), so GC can never reclaim a reachable node.
//! 6. **Complex-table interning** — every edge weight id is in range and
//!    its interned `norm_sqr` matches the value it denotes.

use ddsim_complex::ComplexId;

use crate::edge::{MatEdge, NodeId, VecEdge};
use crate::manager::{ArenaNode as _, DdManager};

/// Collects violations, capping the report so a badly corrupted manager
/// doesn't drown the test output.
struct Report {
    violations: Vec<String>,
}

const MAX_VIOLATIONS: usize = 20;

impl Report {
    fn push(&mut self, v: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }
}

impl DdManager {
    /// Audits every manager invariant (see the module docs for the list).
    ///
    /// Returns `Err` with a newline-separated description of each
    /// violation found (capped at 20). Takes `&mut self` only because
    /// unique-table probes update hit/lookup telemetry; the diagrams are
    /// never modified.
    pub fn audit(&mut self) -> Result<(), String> {
        let mut report = Report {
            violations: Vec::new(),
        };
        self.audit_vec(&mut report);
        self.audit_mat(&mut report);
        if report.violations.is_empty() {
            Ok(())
        } else {
            Err(report.violations.join("\n"))
        }
    }

    /// Whether `w`'s interned norm matches its value, and `w` is in range.
    fn audit_weight(&self, what: &str, w: ComplexId, report: &mut Report) {
        if w.index() >= self.complex.len() {
            report.push(format!(
                "{what}: weight id {} out of range ({} interned)",
                w.index(),
                self.complex.len()
            ));
            return;
        }
        let value = self.complex.value(w);
        let interned = self.complex.norm_sqr(w);
        if (interned - value.norm_sqr()).abs() > 1e-12 * (1.0 + interned) {
            report.push(format!(
                "{what}: interned norm_sqr {interned} disagrees with value {value}"
            ));
        }
    }

    /// The normalization-fixpoint check shared by both node kinds:
    /// `weights` are the stored child weights in slot order.
    ///
    /// Construction divides every child weight by the pivot, and the
    /// divide's `a == b` shortcut makes the pivot lane *exactly*
    /// `ComplexId::ONE` — but the other quotients re-intern, and
    /// tolerance bucketing can land one on a representative whose norm
    /// sits an ulp above 1, usurping the recomputed-pivot position. The
    /// guaranteed fixpoint is therefore: some lane is exactly `ONE`, and
    /// no lane's magnitude exceeds 1 beyond bucketing slack.
    fn audit_normalization(
        &self,
        what: &str,
        weights: impl Iterator<Item = ComplexId> + Clone,
        report: &mut Report,
    ) {
        match self.pivot_weight(weights.clone()) {
            None => report.push(format!("{what}: all-zero node survived construction")),
            Some(pivot) if pivot != ComplexId::ONE => {
                if !weights.clone().any(|w| w == ComplexId::ONE) {
                    report.push(format!(
                        "{what}: stored weights are not normalized (no exact unit lane)"
                    ));
                }
                let mag = self.complex.norm_sqr(pivot);
                if mag > 1.0 + 1e-9 {
                    report.push(format!(
                        "{what}: stored weights are not normalized (pivot {:?}, magnitude² {mag})",
                        self.complex.value(pivot)
                    ));
                }
            }
            Some(_) => {}
        }
        for (slot, w) in weights.enumerate() {
            if !w.is_zero() && self.complex.norm_sqr(w) > 1.0 + 1e-9 {
                report.push(format!(
                    "{what}: slot {slot} magnitude² {} exceeds 1",
                    self.complex.norm_sqr(w)
                ));
            }
        }
    }

    fn audit_vec(&mut self, report: &mut Report) {
        let slots = self.vec_arena.slots.len();
        let mut structural = vec![0u32; slots];
        let mut live = 0usize;
        for idx in 0..slots {
            if self.vec_arena.slots[idx].node.is_free() {
                continue;
            }
            live += 1;
            let id = NodeId(idx as u32);
            let node = *self.vec_node(id);
            let what = format!("vec node {idx} (level {})", node.level);
            if node.level < 1 {
                report.push(format!("{what}: illegal level"));
            }
            for (slot, e) in node.edges.iter().enumerate() {
                if e.weight.is_zero() && *e != VecEdge::ZERO {
                    report.push(format!(
                        "{what}: slot {slot} zero edge is not canonical ZERO"
                    ));
                }
                if e.is_zero() {
                    continue;
                }
                self.audit_weight(&what, e.weight, report);
                if e.node.is_terminal() {
                    if node.level != 1 {
                        report.push(format!("{what}: slot {slot} skips to the terminal"));
                    }
                } else if e.node.index() >= slots
                    || self.vec_arena.slots[e.node.index()].node.is_free()
                {
                    report.push(format!("{what}: slot {slot} dangles"));
                } else {
                    structural[e.node.index()] += 1;
                    let child_level = self.vec_arena.slots[e.node.index()].node.level;
                    if child_level != node.level - 1 {
                        report.push(format!(
                            "{what}: slot {slot} child at level {child_level}, expected {}",
                            node.level - 1
                        ));
                    }
                }
            }
            self.audit_normalization(&what, node.edges.iter().map(|e| e.weight), report);
            let key = (node.level, node.edges);
            if self.vec_unique.get(&key) != Some(id) {
                report.push(format!("{what}: unique table does not map its key to it"));
            }
        }
        if self.vec_unique.len() != live {
            report.push(format!(
                "vec unique table holds {} entries for {live} live nodes",
                self.vec_unique.len()
            ));
        }
        for (idx, &expect) in structural.iter().enumerate() {
            if self.vec_arena.slots[idx].node.is_free() {
                continue;
            }
            let stored = self.vec_arena.refcounts[idx];
            if stored < expect {
                report.push(format!(
                    "vec node {idx}: refcount {stored} below structural parent count {expect}"
                ));
            }
        }
    }

    fn audit_mat(&mut self, report: &mut Report) {
        let slots = self.mat_arena.slots.len();
        let mut structural = vec![0u32; slots];
        let mut live = 0usize;
        for idx in 0..slots {
            if self.mat_arena.slots[idx].node.is_free() {
                continue;
            }
            live += 1;
            let id = NodeId(idx as u32);
            let node = *self.mat_node(id);
            let what = format!("mat node {idx} (level {})", node.level);
            if node.level < 1 {
                report.push(format!("{what}: illegal level"));
            }
            for (slot, e) in node.edges.iter().enumerate() {
                if e.weight.is_zero() && *e != MatEdge::ZERO {
                    report.push(format!(
                        "{what}: slot {slot} zero edge is not canonical ZERO"
                    ));
                }
                if e.is_zero() {
                    continue;
                }
                self.audit_weight(&what, e.weight, report);
                if e.node.is_terminal() {
                    if node.level != 1 {
                        report.push(format!("{what}: slot {slot} skips to the terminal"));
                    }
                } else if e.node.index() >= slots
                    || self.mat_arena.slots[e.node.index()].node.is_free()
                {
                    report.push(format!("{what}: slot {slot} dangles"));
                } else {
                    structural[e.node.index()] += 1;
                    let child_level = self.mat_arena.slots[e.node.index()].node.level;
                    if child_level != node.level - 1 {
                        report.push(format!(
                            "{what}: slot {slot} child at level {child_level}, expected {}",
                            node.level - 1
                        ));
                    }
                }
            }
            self.audit_normalization(&what, node.edges.iter().map(|e| e.weight), report);
            // Recompute the identity predicate exactly as construction
            // stamps it (children's flags are themselves audited, so a
            // wrong bit is reported at the lowest level it appears).
            let e = &node.edges;
            let expect_identity = e[1].is_zero()
                && e[2].is_zero()
                && e[0] == e[3]
                && !e[0].is_zero()
                && e[0].weight.is_one()
                && self.is_identity_node(e[0].node);
            if node.identity != expect_identity
                && self.config.fault != crate::FaultKind::DiagonalCountsAsIdentity
            {
                report.push(format!(
                    "{what}: identity flag {} but structure says {expect_identity}",
                    node.identity
                ));
            }
            let key = (node.level, node.edges);
            if self.mat_unique.get(&key) != Some(id) {
                report.push(format!("{what}: unique table does not map its key to it"));
            }
        }
        if self.mat_unique.len() != live {
            report.push(format!(
                "mat unique table holds {} entries for {live} live nodes",
                self.mat_unique.len()
            ));
        }
        for (idx, &expect) in structural.iter().enumerate() {
            if self.mat_arena.slots[idx].node.is_free() {
                continue;
            }
            let stored = self.mat_arena.refcounts[idx];
            if stored < expect {
                report.push(format!(
                    "mat node {idx}: refcount {stored} below structural parent count {expect}"
                ));
            }
        }
    }

    /// Test-only corruption hooks so `tests/manager_invariants.rs` can
    /// prove the auditor actually fires on each violation class.
    #[doc(hidden)]
    pub fn corrupt_for_audit_test(&mut self, which: &str) {
        match which {
            "refcount" => {
                let idx = self
                    .vec_arena
                    .slots
                    .iter()
                    .position(|s| !s.node.is_free())
                    .expect("a live vec node to corrupt");
                // Zero a refcount that structure says must be positive.
                let victim =
                    self.vec_arena
                        .slots
                        .iter()
                        .find_map(|s| {
                            if s.node.is_free() {
                                return None;
                            }
                            s.node.edges.iter().find_map(|e| {
                                (!e.is_zero() && !e.node.is_terminal()).then_some(e.node)
                            })
                        })
                        .map(|id| id.index())
                        .unwrap_or(idx);
                self.vec_arena.refcounts[victim] = 0;
            }
            "weight" => {
                let unnormalized = self
                    .complex
                    .lookup(ddsim_complex::Complex { re: 3.0, im: 0.25 });
                let slot = self
                    .vec_arena
                    .slots
                    .iter_mut()
                    .find(|s| !s.node.is_free())
                    .expect("a live vec node to corrupt");
                slot.node.edges[0].weight = unnormalized;
            }
            "identity" => {
                let slot = self
                    .mat_arena
                    .slots
                    .iter_mut()
                    .find(|s| !s.node.is_free() && !s.node.identity)
                    .expect("a live non-identity mat node to corrupt");
                slot.node.identity = true;
            }
            "unique" => {
                let node = self
                    .vec_arena
                    .slots
                    .iter()
                    .find_map(|s| (!s.node.is_free()).then_some(s.node))
                    .expect("a live vec node to corrupt");
                self.vec_unique.remove(&(node.level, node.edges));
            }
            other => panic!("unknown corruption {other:?}"),
        }
    }
}

//! Memoization caches ("compute tables") for DD operations.
//!
//! Multiplication caches key on node ids only: for edges `w_a·A` and `w_b·B`
//! the product is `w_a·w_b · (A×B)`, so the weights factor out and one cache
//! entry serves every weighted occurrence of the same node pair. Addition
//! does not factor this way, so its cache keys include a weight ratio-free
//! canonical form: the full `(node, weight)` pairs, ordered.
//!
//! # Table design
//!
//! Each operation owns a [`ComputeTable`]: a fixed-capacity, power-of-two,
//! direct-mapped array indexed by an FxHash of the key. Collisions replace
//! the resident entry (the cache is lossy — a displaced result is merely
//! recomputed later, and hash-consing guarantees the recomputation is
//! bit-identical). Compared to the former `HashMap` tables this removes
//! SipHash, probing, and growth from the hot path and bounds memory.
//!
//! Entries survive garbage collection: instead of clearing the caches on
//! every GC, each entry records the manager *epoch* at insertion and each
//! arena slot records the epoch at which it was last freed. An entry is
//! valid iff every node it references lives in a slot that has not been
//! freed since the entry was written (see `DdManager::collect_garbage`),
//! which is sound even when freed slots are reused by new nodes.

use crate::edge::{MatEdge, NodeId, VecEdge};
use crate::hash::fx_hash;
use ddsim_complex::ComplexTableStats;
use std::hash::Hash;

/// Counters of one cache table. All counters are cumulative; use
/// [`TableStats::delta`] for per-run accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups attempted.
    pub lookups: u64,
    /// Lookups that returned a valid entry.
    pub hits: u64,
    /// Lookups that landed on a slot holding a *different* key.
    pub collisions: u64,
    /// Inserts that displaced a live entry (direct-mapped replacement).
    pub evictions: u64,
    /// Lookups that matched a key but failed epoch validation (the entry
    /// referenced a node freed by GC since it was written).
    pub stale: u64,
}

impl TableStats {
    /// Hit rate over all lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Field-wise `self − before` (for per-run deltas of cumulative stats).
    #[must_use]
    pub fn delta(&self, before: &TableStats) -> TableStats {
        TableStats {
            lookups: self.lookups - before.lookups,
            hits: self.hits - before.hits,
            collisions: self.collisions - before.collisions,
            evictions: self.evictions - before.evictions,
            stale: self.stale - before.stale,
        }
    }

    /// Field-wise accumulation.
    pub fn accumulate(&mut self, other: &TableStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.collisions += other.collisions;
        self.evictions += other.evictions;
        self.stale += other.stale;
    }
}

/// Counters of one unique (hash-consing) table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniqueTableStats {
    /// Lookups attempted.
    pub lookups: u64,
    /// Lookups that found an existing node.
    pub hits: u64,
    /// Extra probe steps beyond the home slot (open addressing).
    pub probes: u64,
    /// Capacity doublings.
    pub grows: u64,
    /// Full rebuilds after garbage collection.
    pub rebuilds: u64,
}

impl UniqueTableStats {
    /// Hit rate over all lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Field-wise `self − before`.
    #[must_use]
    pub fn delta(&self, before: &UniqueTableStats) -> UniqueTableStats {
        UniqueTableStats {
            lookups: self.lookups - before.lookups,
            hits: self.hits - before.hits,
            probes: self.probes - before.probes,
            grows: self.grows - before.grows,
            rebuilds: self.rebuilds - before.rebuilds,
        }
    }

    /// Field-wise accumulation.
    pub fn accumulate(&mut self, other: &UniqueTableStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.probes += other.probes;
        self.grows += other.grows;
        self.rebuilds += other.rebuilds;
    }
}

/// Per-table counters of every cache in a manager, snapshot by
/// [`DdManager::stats`](crate::DdManager::stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Vector-addition cache.
    pub add_vec: TableStats,
    /// Matrix-addition cache.
    pub add_mat: TableStats,
    /// Matrix-vector multiplication cache.
    pub mat_vec: TableStats,
    /// Matrix-matrix multiplication cache.
    pub mat_mat: TableStats,
    /// Conjugate-transpose cache.
    pub conj_transpose: TableStats,
    /// Vector Kronecker-product cache.
    pub kron_vec: TableStats,
    /// Matrix Kronecker-product cache.
    pub kron_mat: TableStats,
    /// Specialized gate-application cache (identity-skipping kernels).
    pub apply_gate: TableStats,
    /// Vector unique (hash-consing) table.
    pub vec_unique: UniqueTableStats,
    /// Matrix unique (hash-consing) table.
    pub mat_unique: UniqueTableStats,
    /// Complex-weight interning table (probe-length / unification
    /// telemetry; see [`ComplexTableStats`]).
    pub complex: ComplexTableStats,
}

impl CacheStats {
    /// The compute tables as `(name, stats)` pairs, in a stable order
    /// (for reports and JSON emission).
    pub fn named_compute(&self) -> [(&'static str, TableStats); 8] {
        [
            ("add_vec", self.add_vec),
            ("add_mat", self.add_mat),
            ("mat_vec", self.mat_vec),
            ("mat_mat", self.mat_mat),
            ("conj_transpose", self.conj_transpose),
            ("kron_vec", self.kron_vec),
            ("kron_mat", self.kron_mat),
            ("apply_gate", self.apply_gate),
        ]
    }

    /// The unique tables as `(name, stats)` pairs.
    pub fn named_unique(&self) -> [(&'static str, UniqueTableStats); 2] {
        [
            ("vec_unique", self.vec_unique),
            ("mat_unique", self.mat_unique),
        ]
    }

    /// Sum over all compute tables.
    pub fn compute_total(&self) -> TableStats {
        let mut total = TableStats::default();
        for (_, t) in self.named_compute() {
            total.accumulate(&t);
        }
        total
    }

    /// Field-wise `self − before`.
    #[must_use]
    pub fn delta(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            add_vec: self.add_vec.delta(&before.add_vec),
            add_mat: self.add_mat.delta(&before.add_mat),
            mat_vec: self.mat_vec.delta(&before.mat_vec),
            mat_mat: self.mat_mat.delta(&before.mat_mat),
            conj_transpose: self.conj_transpose.delta(&before.conj_transpose),
            kron_vec: self.kron_vec.delta(&before.kron_vec),
            kron_mat: self.kron_mat.delta(&before.kron_mat),
            apply_gate: self.apply_gate.delta(&before.apply_gate),
            vec_unique: self.vec_unique.delta(&before.vec_unique),
            mat_unique: self.mat_unique.delta(&before.mat_unique),
            complex: self.complex.delta(&before.complex),
        }
    }

    /// Field-wise accumulation.
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.add_vec.accumulate(&other.add_vec);
        self.add_mat.accumulate(&other.add_mat);
        self.mat_vec.accumulate(&other.mat_vec);
        self.mat_mat.accumulate(&other.mat_mat);
        self.conj_transpose.accumulate(&other.conj_transpose);
        self.kron_vec.accumulate(&other.kron_vec);
        self.kron_mat.accumulate(&other.kron_mat);
        self.apply_gate.accumulate(&other.apply_gate);
        self.vec_unique.accumulate(&other.vec_unique);
        self.mat_unique.accumulate(&other.mat_unique);
        self.complex.accumulate(&other.complex);
    }
}

/// One direct-mapped slot. `epoch == 0` marks an empty slot (the manager
/// epoch starts at 1, so no live entry ever carries 0); this avoids an
/// `Option` discriminant and keeps entries small and `Copy`.
#[derive(Clone, Copy, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    epoch: u32,
}

/// A fixed-capacity, direct-mapped, replace-on-collision memoization table.
///
/// `lookup` takes a validation closure receiving `(key, value, entry
/// epoch)`; the caller checks every referenced node against the arenas'
/// free-epoch stamps. Invalid (stale) entries are cleared on sight.
#[derive(Debug)]
pub(crate) struct ComputeTable<K, V> {
    entries: Vec<Entry<K, V>>,
    mask: u64,
    enabled: bool,
    pub stats: TableStats,
}

impl<K: Copy + PartialEq + Hash, V: Copy> ComputeTable<K, V> {
    /// A table with `2^bits` slots, every slot pre-filled with
    /// `(empty_key, empty_value)` at epoch 0 (never matched).
    fn with_bits(bits: u32, enabled: bool, empty_key: K, empty_value: V) -> Self {
        let capacity = 1usize << bits;
        ComputeTable {
            entries: vec![
                Entry {
                    key: empty_key,
                    value: empty_value,
                    epoch: 0,
                };
                capacity
            ],
            mask: (capacity - 1) as u64,
            enabled,
            stats: TableStats::default(),
        }
    }

    /// Looks up `key`; a resident entry is returned only if `valid`
    /// accepts it (epoch check against the arenas, done by the caller).
    #[inline]
    pub fn lookup(&mut self, key: &K, valid: impl FnOnce(&K, &V, u32) -> bool) -> Option<V> {
        if !self.enabled {
            return None;
        }
        self.stats.lookups += 1;
        let slot = (fx_hash(key) & self.mask) as usize;
        let entry = &mut self.entries[slot];
        if entry.epoch == 0 {
            return None;
        }
        if entry.key != *key {
            self.stats.collisions += 1;
            return None;
        }
        if !valid(&entry.key, &entry.value, entry.epoch) {
            // Referenced nodes were freed; drop the entry so the slot is
            // reusable without re-validating.
            entry.epoch = 0;
            self.stats.stale += 1;
            return None;
        }
        self.stats.hits += 1;
        Some(entry.value)
    }

    /// Inserts at the key's slot, displacing whatever lives there.
    ///
    /// `epoch` is the manager's current epoch (≥ 1).
    #[inline]
    pub fn insert(&mut self, key: K, value: V, epoch: u32) {
        if !self.enabled {
            return;
        }
        debug_assert!(epoch > 0, "epoch 0 is the empty sentinel");
        let slot = (fx_hash(&key) & self.mask) as usize;
        let entry = &mut self.entries[slot];
        if entry.epoch != 0 && entry.key != key {
            self.stats.evictions += 1;
        }
        *entry = Entry { key, value, epoch };
    }

    /// Number of occupied slots (diagnostics; linear scan).
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.epoch != 0).count()
    }

    /// Heap bytes held by the entry array (capacity-based, O(1)).
    pub fn bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<Entry<K, V>>()
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        for entry in &mut self.entries {
            entry.epoch = 0;
        }
    }
}

/// All operation caches of a manager.
#[derive(Debug)]
pub(crate) struct ComputeTables {
    pub add_vec: ComputeTable<(VecEdge, VecEdge), VecEdge>,
    pub add_mat: ComputeTable<(MatEdge, MatEdge), MatEdge>,
    pub mat_vec: ComputeTable<(NodeId, NodeId), VecEdge>,
    pub mat_mat: ComputeTable<(NodeId, NodeId), MatEdge>,
    pub conj_transpose: ComputeTable<NodeId, MatEdge>,
    pub kron_vec: ComputeTable<(NodeId, VecEdge), VecEdge>,
    pub kron_mat: ComputeTable<(NodeId, MatEdge), MatEdge>,
    /// Keyed on (interned gate-operation tag, state node); see
    /// [`DdManager::apply_single_qubit`](crate::DdManager::apply_single_qubit).
    pub apply_gate: ComputeTable<(u32, NodeId), VecEdge>,
}

impl ComputeTables {
    pub fn new(bits: u32, enabled: bool) -> Self {
        let zv = VecEdge::ZERO;
        let zm = MatEdge::ZERO;
        let t = NodeId::TERMINAL;
        ComputeTables {
            add_vec: ComputeTable::with_bits(bits, enabled, (zv, zv), zv),
            add_mat: ComputeTable::with_bits(bits, enabled, (zm, zm), zm),
            mat_vec: ComputeTable::with_bits(bits, enabled, (t, t), zv),
            mat_mat: ComputeTable::with_bits(bits, enabled, (t, t), zm),
            conj_transpose: ComputeTable::with_bits(bits, enabled, t, zm),
            kron_vec: ComputeTable::with_bits(bits, enabled, (t, zv), zv),
            kron_mat: ComputeTable::with_bits(bits, enabled, (t, zm), zm),
            apply_gate: ComputeTable::with_bits(bits, enabled, (u32::MAX, t), zv),
        }
    }

    /// Drops every cached entry (diagnostic / benchmarking hook — GC does
    /// *not* call this; entries are invalidated per-node via epochs).
    pub fn clear(&mut self) {
        self.add_vec.clear();
        self.add_mat.clear();
        self.mat_vec.clear();
        self.mat_mat.clear();
        self.conj_transpose.clear();
        self.kron_vec.clear();
        self.kron_mat.clear();
        self.apply_gate.clear();
    }

    /// Total heap bytes across every table (capacity-based, O(1)); feeds
    /// the governor's `max_table_bytes` accounting.
    pub fn bytes(&self) -> usize {
        self.add_vec.bytes()
            + self.add_mat.bytes()
            + self.mat_vec.bytes()
            + self.mat_mat.bytes()
            + self.conj_transpose.bytes()
            + self.kron_vec.bytes()
            + self.kron_mat.bytes()
            + self.apply_gate.bytes()
    }

    /// Total number of cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.add_vec.len()
            + self.add_mat.len()
            + self.mat_vec.len()
            + self.mat_mat.len()
            + self.conj_transpose.len()
            + self.kron_vec.len()
            + self.kron_mat.len()
            + self.apply_gate.len()
    }

    /// Zeroes every table's counters.
    pub fn reset_stats(&mut self) {
        self.add_vec.stats = TableStats::default();
        self.add_mat.stats = TableStats::default();
        self.mat_vec.stats = TableStats::default();
        self.mat_mat.stats = TableStats::default();
        self.conj_transpose.stats = TableStats::default();
        self.kron_vec.stats = TableStats::default();
        self.kron_mat.stats = TableStats::default();
        self.apply_gate.stats = TableStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_complex::ComplexId;

    fn table() -> ComputeTable<(NodeId, NodeId), VecEdge> {
        ComputeTable::with_bits(4, true, (NodeId::TERMINAL, NodeId::TERMINAL), VecEdge::ZERO)
    }

    fn edge(node: u32) -> VecEdge {
        VecEdge {
            node: NodeId(node),
            weight: ComplexId::ONE,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut t = table();
        let key = (NodeId(1), NodeId(2));
        assert_eq!(t.lookup(&key, |_, _, _| true), None);
        t.insert(key, edge(7), 1);
        assert_eq!(t.lookup(&key, |_, _, _| true), Some(edge(7)));
        assert_eq!(t.stats.lookups, 2);
        assert_eq!(t.stats.hits, 1);
    }

    #[test]
    fn failed_validation_clears_the_entry() {
        let mut t = table();
        let key = (NodeId(1), NodeId(2));
        t.insert(key, edge(7), 1);
        assert_eq!(t.lookup(&key, |_, _, _| false), None);
        assert_eq!(t.stats.stale, 1);
        // The slot was cleared: the next probe is a plain miss, not stale.
        assert_eq!(t.lookup(&key, |_, _, _| true), None);
        assert_eq!(t.stats.stale, 1);
    }

    #[test]
    fn validation_sees_the_insertion_epoch() {
        let mut t = table();
        let key = (NodeId(3), NodeId(4));
        t.insert(key, edge(9), 42);
        let mut seen = 0;
        t.lookup(&key, |_, _, epoch| {
            seen = epoch;
            true
        });
        assert_eq!(seen, 42);
    }

    #[test]
    fn collision_replaces_on_insert() {
        // With 2^0 = 1 slot every distinct key collides.
        let mut t: ComputeTable<(NodeId, NodeId), VecEdge> =
            ComputeTable::with_bits(0, true, (NodeId::TERMINAL, NodeId::TERMINAL), VecEdge::ZERO);
        let k1 = (NodeId(1), NodeId(2));
        let k2 = (NodeId(3), NodeId(4));
        t.insert(k1, edge(1), 1);
        t.insert(k2, edge(2), 1);
        assert_eq!(t.stats.evictions, 1);
        assert_eq!(t.lookup(&k1, |_, _, _| true), None);
        assert_eq!(t.stats.collisions, 1);
        assert_eq!(t.lookup(&k2, |_, _, _| true), Some(edge(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn disabled_table_never_stores() {
        let mut t: ComputeTable<(NodeId, NodeId), VecEdge> = ComputeTable::with_bits(
            4,
            false,
            (NodeId::TERMINAL, NodeId::TERMINAL),
            VecEdge::ZERO,
        );
        let key = (NodeId(1), NodeId(2));
        t.insert(key, edge(7), 1);
        assert_eq!(t.lookup(&key, |_, _, _| true), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.stats.lookups, 0, "disabled tables do not count");
    }

    #[test]
    fn stats_delta_and_accumulate() {
        let before = TableStats {
            lookups: 10,
            hits: 4,
            collisions: 1,
            evictions: 2,
            stale: 0,
        };
        let after = TableStats {
            lookups: 25,
            hits: 14,
            collisions: 3,
            evictions: 2,
            stale: 1,
        };
        let d = after.delta(&before);
        assert_eq!(d.lookups, 15);
        assert_eq!(d.hits, 10);
        let mut acc = TableStats::default();
        acc.accumulate(&d);
        acc.accumulate(&d);
        assert_eq!(acc.lookups, 30);
        assert!((d.hit_rate() - 10.0 / 15.0).abs() < 1e-12);
    }
}

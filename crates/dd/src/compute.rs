//! Memoization caches ("compute tables") for DD operations.
//!
//! Multiplication caches key on node ids only: for edges `w_a·A` and `w_b·B`
//! the product is `w_a·w_b · (A×B)`, so the weights factor out and one cache
//! entry serves every weighted occurrence of the same node pair. Addition
//! does not factor this way, so its cache keys include a weight ratio-free
//! canonical form: the full `(node, weight)` pairs, ordered.

use std::collections::HashMap;

use crate::edge::{MatEdge, NodeId, VecEdge};

/// All operation caches of a manager.
#[derive(Debug, Default)]
pub(crate) struct ComputeTables {
    pub add_vec: HashMap<(VecEdge, VecEdge), VecEdge>,
    pub add_mat: HashMap<(MatEdge, MatEdge), MatEdge>,
    pub mat_vec: HashMap<(NodeId, NodeId), VecEdge>,
    pub mat_mat: HashMap<(NodeId, NodeId), MatEdge>,
    pub conj_transpose: HashMap<NodeId, MatEdge>,
    pub kron_vec: HashMap<(NodeId, VecEdge), VecEdge>,
    pub kron_mat: HashMap<(NodeId, MatEdge), MatEdge>,
}

impl ComputeTables {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every cached entry. Must be called whenever nodes may be
    /// reclaimed (cached results hold no references).
    pub fn clear(&mut self) {
        self.add_vec.clear();
        self.add_mat.clear();
        self.mat_vec.clear();
        self.mat_mat.clear();
        self.conj_transpose.clear();
        self.kron_vec.clear();
        self.kron_mat.clear();
    }

    /// Total number of cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.add_vec.len()
            + self.add_mat.len()
            + self.mat_vec.len()
            + self.mat_mat.len()
            + self.conj_transpose.len()
            + self.kron_vec.len()
            + self.kron_mat.len()
    }
}

//! Versioned binary checkpoints of a simulation's DD state.
//!
//! A [`Snapshot`] captures everything needed to resume a run and reproduce
//! it *bit for bit*:
//!
//! * the **entire complex table** in insertion order — not just the weights
//!   reachable from the state, because tolerance bucketing makes interning
//!   history-dependent: the first value interned in a bucket becomes the
//!   representative for every later near-equal value, so replaying with a
//!   pruned table would intern future weights to different representatives
//!   and drift the amplitudes;
//! * the state vector DD as a topologically ordered node list (children
//!   before parents). Stored pivot child weights are exactly ONE thanks to
//!   canonical normalization, so rebuilding through
//!   [`DdManager::make_vec_node`] reproduces the identical diagram with no
//!   re-normalization drift;
//! * the engine-level cursor: instruction pointer into the flattened op
//!   stream, classical bits, and the RNG's raw xoshiro256** state, so
//!   post-resume measurements consume the same random stream;
//! * a hash of the circuit source, so a snapshot cannot silently be resumed
//!   against a different circuit.
//!
//! * the **variable order** (version 2), so a snapshot taken after a
//!   dynamic reorder restores both the diagram *and* its qubit↔level
//!   interpretation bitwise.
//!
//! # On-disk format (version 2)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic      8 bytes  "DDSNAP01"
//! version    u32      2
//! qubits     u32
//! next_op    u64      index into the flattened op stream
//! circ_hash  u64      FNV-1a of the circuit's canonical text
//! rng        4×u64    xoshiro256** state words
//! tolerance  f64      complex-table tolerance (bit pattern)
//! #cbits     u32      then one byte per classical bit (0/1)
//! #weights   u32      then (re: f64, im: f64) per table entry, in order
//! #nodes     u32      then per node: level u32, 2 × (child u32, weight u32)
//!                     child == 0xFFFF_FFFF means the terminal node
//! root       child u32, weight u32
//! #order     u32      then one u32 per level: the qubit at level ℓ is
//!                     entry ℓ - 1; count 0 means the identity order
//! checksum   u64      FNV-1a over every preceding byte
//! ```
//!
//! Version 1 files are identical minus the `#order` section; the reader
//! accepts them and restores the identity order. The order section sits at
//! the *end* of the body precisely so every version-1 field keeps its
//! offset.

use std::io::{Read, Write};
use std::path::Path;

use ddsim_complex::{Complex, ComplexId, ComplexTable};

use crate::edge::{NodeId, VecEdge};
use crate::manager::{DdConfig, DdManager};

/// File magic: snapshot format, version baked into the tag for `file(1)`.
const MAGIC: &[u8; 8] = b"DDSNAP01";
/// Current format version. Version 1 (no variable-order section) is still
/// accepted on read.
const VERSION: u32 = 2;
/// Child reference denoting the terminal node.
const TERMINAL_REF: u32 = u32::MAX;

/// A serialized edge: index into the snapshot's node list (or
/// [`TERMINAL_REF`]) plus a complex-table weight id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapEdge {
    /// Index into [`Snapshot::nodes`], or [`u32::MAX`] for the terminal.
    pub node: u32,
    /// Index into [`Snapshot::weights`].
    pub weight: u32,
}

/// A serialized vector-DD node. Nodes appear children-before-parents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapNode {
    /// The node's level (1 = bottommost qubit).
    pub level: u32,
    /// The two successor edges (upper / lower half).
    pub children: [SnapEdge; 2],
}

/// A resumable checkpoint of a simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Qubit count of the captured state.
    pub qubits: u32,
    /// Index of the next (not yet executed) op in the flattened stream.
    pub next_op: u64,
    /// FNV-1a hash of the circuit's canonical text; checked on resume.
    pub circuit_hash: u64,
    /// Raw xoshiro256** state of the engine RNG.
    pub rng_state: [u64; 4],
    /// Classical register contents.
    pub classical_bits: Vec<bool>,
    /// Complex-table tolerance the run was started with.
    pub tolerance: f64,
    /// The full complex table in insertion order (bit-exact f64 pairs).
    pub weights: Vec<Complex>,
    /// The state DD, topologically ordered (children before parents).
    pub nodes: Vec<SnapNode>,
    /// The root edge of the state DD.
    pub root: SnapEdge,
    /// Level→qubit map of the captured variable order (entry `ℓ - 1` is
    /// the qubit at level `ℓ`); empty means the identity order. Version-1
    /// files always restore as empty.
    pub order: Vec<u32>,
}

/// Failure to read, validate, or restore a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// Structural validation failed (checksum, dangling reference, bad
    /// complex table, …). The message names the first violation.
    Corrupt(String),
    /// The in-memory state exceeds a format capacity (a section
    /// count no longer fits in its `u32` field). Writing anyway would
    /// silently truncate the count and produce a checksummed-but-corrupt
    /// file, so capture/write refuse instead.
    TooLarge {
        /// Which section overflowed ("nodes", "weights", …).
        what: &'static str,
        /// The count that does not fit.
        count: usize,
    },
    /// The snapshot's circuit hash does not match the circuit it is being
    /// resumed against.
    CircuitMismatch {
        /// Hash stored in the snapshot.
        expected: u64,
        /// Hash of the circuit offered for resumption.
        actual: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => f.write_str("not a DD snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (supported: 1..={VERSION})"
                )
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::TooLarge { what, count } => write!(
                f,
                "snapshot too large: {count} {what} exceed the format's u32 section limit"
            ),
            SnapshotError::CircuitMismatch { expected, actual } => write!(
                f,
                "snapshot was taken from a different circuit \
                 (hash {expected:#018x}, offered {actual:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Checked `usize → u32` for the format's section counts; refuses with
/// [`SnapshotError::TooLarge`] instead of silently truncating.
fn len_u32(count: usize, what: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(count).map_err(|_| SnapshotError::TooLarge { what, count })
}

/// Fsyncs the directory containing `path` so a rename into it is durable.
///
/// On non-Unix platforms this is a no-op: directory handles cannot be
/// opened for syncing portably, and the rename itself is still atomic.
/// Errors opening/syncing the directory are surfaced — a checkpoint that
/// claims durability must not silently skip the directory entry.
pub fn sync_parent_dir(path: &Path) -> Result<(), SnapshotError> {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// FNV-1a over a byte slice; also used for the circuit-text hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Snapshot {
    /// Captures the manager's state DD rooted at `root` plus the
    /// engine-level cursor fields.
    ///
    /// The node list is produced by an iterative post-order walk so deep
    /// (wide-register) diagrams cannot overflow the thread stack.
    ///
    /// Fails with [`SnapshotError::TooLarge`] if any section count no
    /// longer fits the format's `u32` fields; truncating instead
    /// would produce a checksummed-but-corrupt file.
    pub fn capture(
        dd: &DdManager,
        root: VecEdge,
        qubits: u32,
        next_op: u64,
        circuit_hash: u64,
        rng_state: [u64; 4],
        classical_bits: Vec<bool>,
    ) -> Result<Snapshot, SnapshotError> {
        let mut order: Vec<NodeId> = Vec::new();
        let mut index_of: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        if !root.node.is_terminal() && !root.is_zero() {
            // Iterative DFS with an explicit "children emitted?" marker.
            let mut stack: Vec<(NodeId, bool)> = vec![(root.node, false)];
            while let Some((id, expanded)) = stack.pop() {
                if index_of.contains_key(&id) {
                    continue;
                }
                if expanded {
                    // Node indices must stay below TERMINAL_REF, which is
                    // reserved for the terminal.
                    if order.len() >= TERMINAL_REF as usize {
                        return Err(SnapshotError::TooLarge {
                            what: "nodes",
                            count: order.len() + 1,
                        });
                    }
                    index_of.insert(id, order.len() as u32);
                    order.push(id);
                } else {
                    stack.push((id, true));
                    for child in dd.vec_node(id).edges {
                        if !child.node.is_terminal() && !index_of.contains_key(&child.node) {
                            stack.push((child.node, false));
                        }
                    }
                }
            }
        }
        // Every interned weight id is below the table length, so checking
        // the length once covers every `weight.index() as u32` below.
        len_u32(dd.complex.values().len(), "weights")?;
        len_u32(classical_bits.len(), "classical bits")?;
        let encode = |e: VecEdge| SnapEdge {
            node: if e.node.is_terminal() {
                TERMINAL_REF
            } else {
                index_of[&e.node]
            },
            weight: e.weight.index() as u32,
        };
        let nodes = order
            .iter()
            .map(|&id| {
                let n = dd.vec_node(id);
                SnapNode {
                    level: n.level,
                    children: [encode(n.edges[0]), encode(n.edges[1])],
                }
            })
            .collect();
        Ok(Snapshot {
            qubits,
            next_op,
            circuit_hash,
            rng_state,
            classical_bits,
            tolerance: dd.complex.tolerance(),
            weights: dd.complex.values(),
            nodes,
            root: encode(root),
            order: if dd.var_order().is_identity() {
                Vec::new()
            } else {
                dd.var_order().level_map(qubits)
            },
        })
    }

    /// Rebuilds a fresh manager holding the captured state.
    ///
    /// `config` supplies everything *except* the tolerance, which is taken
    /// from the snapshot (a different tolerance would re-bucket the table
    /// and break bit-exactness). Returns the manager and the root edge,
    /// ref-pinned against garbage collection.
    pub fn restore(&self, mut config: DdConfig) -> Result<(DdManager, VecEdge), SnapshotError> {
        self.validate()?;
        config.tolerance = self.tolerance;
        let mut dd = DdManager::with_config(config);
        if !self.order.is_empty() {
            // Validated as a permutation of 0..qubits above; node levels are
            // order-independent, so the install order does not matter.
            dd.set_var_order(crate::VarOrder::from_level_map(self.order.clone()));
        }
        dd.complex = ComplexTable::from_values(self.tolerance, &self.weights)
            .map_err(SnapshotError::Corrupt)?;
        // `from_values` builds with the default SIMD tier; re-apply the
        // caller's choice (the results are bitwise identical either way —
        // this only selects which kernels compute them).
        dd.complex.set_simd_enabled(config.simd);
        let weight_of = |w: u32| ComplexId::from_index(w as usize);
        // Captured nodes are usually a fixpoint of make_vec_node's
        // normalization (pivot child weight exactly ONE), so rebuilding
        // returns weight-ONE edges and the restore is bitwise. The
        // exception: a quotient lane whose interned norm sits an ulp
        // above 1 can usurp the recomputed pivot, making re-normalization
        // return a non-ONE edge weight — which must be folded into the
        // referencing edge, not dropped, or the restored state is wrong.
        let mut built: Vec<VecEdge> = Vec::with_capacity(self.nodes.len());
        fn decode(
            dd: &mut DdManager,
            built: &[VecEdge],
            e: SnapEdge,
            weight_of: impl Fn(u32) -> ComplexId,
        ) -> VecEdge {
            if e.node == TERMINAL_REF {
                VecEdge {
                    node: NodeId::TERMINAL,
                    weight: weight_of(e.weight),
                }
            } else {
                let base = built[e.node as usize];
                let stored = weight_of(e.weight);
                VecEdge {
                    node: base.node,
                    weight: if base.weight.is_one() {
                        stored
                    } else {
                        dd.complex.mul(stored, base.weight)
                    },
                }
            }
        }
        for node in &self.nodes {
            let children = [
                decode(&mut dd, &built, node.children[0], weight_of),
                decode(&mut dd, &built, node.children[1], weight_of),
            ];
            let rebuilt = dd.make_vec_node(node.level, children);
            built.push(rebuilt);
        }
        let root = decode(&mut dd, &built, self.root, weight_of);
        dd.inc_ref_vec(root);
        Ok((dd, root))
    }

    /// Structural validation: reference ranges, topological order, weight
    /// table sanity. Called by [`restore`](Self::restore) and
    /// [`read_from`](Self::read_from).
    fn validate(&self) -> Result<(), SnapshotError> {
        let corrupt = |msg: String| Err(SnapshotError::Corrupt(msg));
        if self.weights.len() < 2 {
            return corrupt("complex table must hold at least zero and one".into());
        }
        let check_edge = |e: SnapEdge, parent: usize| -> Result<(), SnapshotError> {
            if e.node != TERMINAL_REF && e.node as usize >= parent {
                return Err(SnapshotError::Corrupt(format!(
                    "edge to node {} breaks topological order at node {}",
                    e.node, parent
                )));
            }
            if e.weight as usize >= self.weights.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "weight id {} out of range ({} weights)",
                    e.weight,
                    self.weights.len()
                )));
            }
            Ok(())
        };
        for (i, node) in self.nodes.iter().enumerate() {
            if node.level == 0 || node.level > self.qubits {
                return corrupt(format!(
                    "node {} has level {} of {}",
                    i, node.level, self.qubits
                ));
            }
            check_edge(node.children[0], i)?;
            check_edge(node.children[1], i)?;
        }
        check_edge(self.root, self.nodes.len())?;
        if self.classical_bits.len() > u32::MAX as usize {
            return corrupt("classical register too large".into());
        }
        if self.rng_state == [0; 4] {
            return corrupt("all-zero RNG state".into());
        }
        if !self.order.is_empty() {
            if self.order.len() != self.qubits as usize {
                return corrupt(format!(
                    "variable order has {} entries for {} qubits",
                    self.order.len(),
                    self.qubits
                ));
            }
            let mut seen = vec![false; self.order.len()];
            for &q in &self.order {
                if q as usize >= seen.len() || seen[q as usize] {
                    return corrupt(format!("variable order is not a permutation (qubit {q})"));
                }
                seen[q as usize] = true;
            }
        }
        Ok(())
    }

    /// Serializes to the version-2 binary format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), SnapshotError> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.qubits.to_le_bytes());
        buf.extend_from_slice(&self.next_op.to_le_bytes());
        buf.extend_from_slice(&self.circuit_hash.to_le_bytes());
        for word in self.rng_state {
            buf.extend_from_slice(&word.to_le_bytes());
        }
        buf.extend_from_slice(&self.tolerance.to_bits().to_le_bytes());
        buf.extend_from_slice(&len_u32(self.classical_bits.len(), "classical bits")?.to_le_bytes());
        buf.extend(self.classical_bits.iter().map(|&b| b as u8));
        buf.extend_from_slice(&len_u32(self.weights.len(), "weights")?.to_le_bytes());
        for c in &self.weights {
            buf.extend_from_slice(&c.re.to_bits().to_le_bytes());
            buf.extend_from_slice(&c.im.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&len_u32(self.nodes.len(), "nodes")?.to_le_bytes());
        for node in &self.nodes {
            buf.extend_from_slice(&node.level.to_le_bytes());
            for child in node.children {
                buf.extend_from_slice(&child.node.to_le_bytes());
                buf.extend_from_slice(&child.weight.to_le_bytes());
            }
        }
        buf.extend_from_slice(&self.root.node.to_le_bytes());
        buf.extend_from_slice(&self.root.weight.to_le_bytes());
        buf.extend_from_slice(&len_u32(self.order.len(), "order entries")?.to_le_bytes());
        for &q in &self.order {
            buf.extend_from_slice(&q.to_le_bytes());
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        w.write_all(&buf)?;
        Ok(())
    }

    /// Deserializes and validates a snapshot (format versions 1 and 2;
    /// version-1 files restore the identity variable order).
    pub fn read_from(r: &mut impl Read) -> Result<Snapshot, SnapshotError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        if buf.len() < MAGIC.len() + 8 || &buf[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        // `tail` is exactly 8 bytes by construction; the conversion cannot
        // fail (same for the `take(n)` slices in `Cursor` below).
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(SnapshotError::Corrupt("checksum mismatch".into()));
        }
        let mut cur = Cursor {
            buf: body,
            pos: MAGIC.len(),
        };
        let version = cur.u32()?;
        if version == 0 || version > VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let qubits = cur.u32()?;
        let next_op = cur.u64()?;
        let circuit_hash = cur.u64()?;
        let rng_state = [cur.u64()?, cur.u64()?, cur.u64()?, cur.u64()?];
        let tolerance = f64::from_bits(cur.u64()?);
        // Each section count is bounds-checked against the bytes actually
        // left in the body BEFORE the allocation it sizes: a forged count
        // (with a recomputed checksum) must not drive `with_capacity` into
        // a multi-gigabyte allocation.
        let n_cbits = cur.u32()? as usize;
        cur.expect_elems(n_cbits, 1, "classical-bit")?;
        let mut classical_bits = Vec::with_capacity(n_cbits);
        for _ in 0..n_cbits {
            classical_bits.push(cur.u8()? != 0);
        }
        let n_weights = cur.u32()? as usize;
        cur.expect_elems(n_weights, 16, "weight")?;
        let mut weights = Vec::with_capacity(n_weights);
        for _ in 0..n_weights {
            let re = f64::from_bits(cur.u64()?);
            let im = f64::from_bits(cur.u64()?);
            weights.push(Complex::new(re, im));
        }
        let n_nodes = cur.u32()? as usize;
        cur.expect_elems(n_nodes, 20, "node")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let level = cur.u32()?;
            let mut children = [SnapEdge {
                node: TERMINAL_REF,
                weight: 0,
            }; 2];
            for child in &mut children {
                child.node = cur.u32()?;
                child.weight = cur.u32()?;
            }
            nodes.push(SnapNode { level, children });
        }
        let root = SnapEdge {
            node: cur.u32()?,
            weight: cur.u32()?,
        };
        let mut order = Vec::new();
        if version >= 2 {
            let n_order = cur.u32()? as usize;
            cur.expect_elems(n_order, 4, "order entry")?;
            order.reserve(n_order);
            for _ in 0..n_order {
                order.push(cur.u32()?);
            }
        }
        if cur.pos != body.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes",
                body.len() - cur.pos
            )));
        }
        let snapshot = Snapshot {
            qubits,
            next_op,
            circuit_hash,
            rng_state,
            classical_bits,
            tolerance,
            weights,
            nodes,
            root,
            order,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` atomically and *durably*: the bytes
    /// are written to a temp file, the temp file is fsynced, the rename
    /// replaces `path`, and on Unix the parent directory is fsynced too —
    /// so after `save` returns, a `kill -9` (or power loss ordering the
    /// directory entry before the data) cannot leave a truncated or
    /// unlinked snapshot behind. A failed write removes the temp file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("tmp");
        let write = (|| -> Result<(), SnapshotError> {
            let mut file = std::fs::File::create(&tmp)?;
            self.write_to(&mut file)?;
            file.sync_all()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;
        Ok(())
    }

    /// Reads and validates a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let mut file = std::fs::File::open(path)?;
        Snapshot::read_from(&mut file)
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Corrupt("truncated snapshot body".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Rejects a section count whose `count × elem_size` exceeds the bytes
    /// remaining in the body, so callers can size allocations from it.
    fn expect_elems(
        &self,
        count: usize,
        elem_size: usize,
        what: &str,
    ) -> Result<(), SnapshotError> {
        let remaining = self.buf.len() - self.pos;
        let fits = count
            .checked_mul(elem_size)
            .is_some_and(|need| need <= remaining);
        if !fits {
            return Err(SnapshotError::Corrupt(format!(
                "{what} count {count} exceeds the {remaining} bytes left in the body"
            )));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entangled_state(dd: &mut DdManager, n: u32) -> VecEdge {
        let h = Complex::SQRT2_INV;
        let h_gate = [[h, h], [h, -h]];
        let mut state = dd.vec_zero_state(n);
        state = dd.apply_single_qubit(0, h_gate, state).unwrap();
        for q in 1..n {
            state = dd
                .apply_controlled(
                    &[crate::Control::pos(q - 1)],
                    q,
                    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
                    state,
                )
                .unwrap();
        }
        // A phase layer to get non-trivial weights into the table.
        for q in 0..n {
            let phase = Complex::from_polar(1.0, 0.37 * (q as f64 + 1.0));
            state = dd
                .apply_single_qubit(
                    q,
                    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, phase]],
                    state,
                )
                .unwrap();
        }
        state
    }

    fn capture_of(dd: &DdManager, root: VecEdge, n: u32) -> Snapshot {
        Snapshot::capture(dd, root, n, 7, 0xfeed, [1, 2, 3, 4], vec![true, false]).unwrap()
    }

    #[test]
    fn round_trip_preserves_amplitudes_bit_for_bit() {
        let mut dd = DdManager::new();
        let n = 6;
        let state = entangled_state(&mut dd, n);
        let before = dd.vec_to_amplitudes(state);

        let snap = capture_of(&dd, state, n);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let read = Snapshot::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(read, snap);

        let (restored, root) = read.restore(DdConfig::default()).unwrap();
        let after = restored.vec_to_amplitudes(root);
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "real part drifted");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "imaginary part drifted");
        }
        assert_eq!(read.next_op, 7);
        assert_eq!(read.rng_state, [1, 2, 3, 4]);
        assert_eq!(read.classical_bits, vec![true, false]);
    }

    #[test]
    fn restored_manager_interns_to_the_same_representatives() {
        // The decisive property for bit-exact resume: interning a value
        // near an existing bucket representative must resolve to the SAME
        // id in the restored table as in the original.
        let mut dd = DdManager::new();
        let n = 4;
        let state = entangled_state(&mut dd, n);
        let snap = capture_of(&dd, state, n);
        let (mut restored, _) = snap.restore(DdConfig::default()).unwrap();
        let probe = Complex::from_polar(1.0, 0.37); // re-used phase value
        let a = dd.intern(probe);
        let b = restored.intern(probe);
        assert_eq!(a, b, "bucket representatives must survive the round trip");
        assert_eq!(dd.complex.len(), restored.complex.len());
    }

    #[test]
    fn zero_and_terminal_roots_round_trip() {
        let dd = DdManager::new();
        let snap = Snapshot::capture(&dd, VecEdge::ZERO, 3, 0, 0, [9, 9, 9, 9], vec![]).unwrap();
        assert!(snap.nodes.is_empty());
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let read = Snapshot::read_from(&mut bytes.as_slice()).unwrap();
        let (restored, r) = read.restore(DdConfig::default()).unwrap();
        assert!(r.is_zero());
        drop(restored);
    }

    #[test]
    fn corrupt_bytes_are_rejected_with_typed_errors() {
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 3);
        let snap = capture_of(&dd, state, 3);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Snapshot::read_from(&mut bad.as_slice()),
            Err(SnapshotError::BadMagic)
        ));

        // Bit flip in the body trips the checksum.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            Snapshot::read_from(&mut bad.as_slice()),
            Err(SnapshotError::Corrupt(_))
        ));

        // Truncation trips the checksum or the body reader.
        let bad = &bytes[..bytes.len() - 9];
        assert!(Snapshot::read_from(&mut &bad[..]).is_err());

        // Future version is refused, not misparsed.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bad.len() - 8;
        let sum = fnv1a(&bad[..body_len]);
        let tail = body_len;
        bad[tail..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::read_from(&mut bad.as_slice()),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    /// Recomputes the trailing FNV-1a checksum after a deliberate edit, so
    /// a test reaches the section parser instead of the checksum gate.
    fn reseal(bytes: &mut [u8]) {
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn forged_section_counts_are_rejected_before_allocation() {
        // A forged count with a valid checksum must be refused by the
        // count-vs-remaining-bytes guard, not fed to `Vec::with_capacity`
        // (a count of ~4 billion nodes would ask for an 80 GB allocation).
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 3);
        let snap = capture_of(&dd, state, 3);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();

        // Fixed header: magic 8 + version 4 + qubits 4 + next_op 8 +
        // circ_hash 8 + rng 32 + tolerance 8 = 72 bytes.
        let cbits_at = 72;
        let weights_at = cbits_at + 4 + snap.classical_bits.len();
        let nodes_at = weights_at + 4 + 16 * snap.weights.len();
        let order_at = nodes_at + 4 + 20 * snap.nodes.len() + 8;
        for off in [cbits_at, weights_at, nodes_at, order_at] {
            let mut bad = bytes.clone();
            bad[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            reseal(&mut bad);
            match Snapshot::read_from(&mut bad.as_slice()) {
                Err(SnapshotError::Corrupt(msg)) => {
                    assert!(
                        msg.contains("exceeds"),
                        "count at offset {off} should trip the size guard, got: {msg}"
                    );
                }
                other => panic!("forged count at offset {off} accepted: {other:?}"),
            }
        }
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn oversized_section_counts_refuse_to_serialize() {
        // Writing a count that does not fit u32 must fail typed instead of
        // silently truncating into a checksummed-but-corrupt file.
        match len_u32(u32::MAX as usize + 1, "nodes") {
            Err(SnapshotError::TooLarge {
                what: "nodes",
                count,
            }) => {
                assert_eq!(count, u32::MAX as usize + 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(len_u32(17, "weights").unwrap(), 17);
    }

    #[test]
    fn validate_rejects_dangling_and_unordered_references() {
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 3);
        let mut snap = capture_of(&dd, state, 3);
        // Forward reference breaks topological order.
        snap.nodes[0].children[0].node = snap.nodes.len() as u32 - 1;
        assert!(matches!(
            snap.restore(DdConfig::default()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn reordered_state_round_trips_with_its_order() {
        let mut dd = DdManager::new();
        let n = 5;
        let mut state = entangled_state(&mut dd, n);
        dd.inc_ref_vec(state);
        for l in [1, 3, 2] {
            let next = dd.swap_levels(state, l);
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(state);
            state = next;
        }
        assert!(!dd.var_order().is_identity());
        let before = dd.vec_to_amplitudes(state);

        let snap = capture_of(&dd, state, n);
        assert_eq!(snap.order, dd.var_order().level_map(n));
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let read = Snapshot::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(read, snap);

        let (restored, root) = read.restore(DdConfig::default()).unwrap();
        assert_eq!(restored.var_order(), dd.var_order());
        let after = restored.vec_to_amplitudes(root);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "real part drifted");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "imaginary part drifted");
        }
    }

    #[test]
    fn version_1_files_without_order_section_still_load() {
        // Forge a v1 file from a v2 one: drop the (empty) order section's
        // 4-byte count, rewrite the version field, reseal the checksum.
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 3);
        let snap = capture_of(&dd, state, 3);
        assert!(snap.order.is_empty());
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let checksum_at = bytes.len() - 8;
        let order_count_at = checksum_at - 4;
        bytes.drain(order_count_at..checksum_at);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        reseal(&mut bytes);
        let read = Snapshot::read_from(&mut bytes.as_slice()).unwrap();
        assert!(read.order.is_empty(), "v1 files restore the identity order");
        assert_eq!(read.nodes, snap.nodes);
        let (restored, _) = read.restore(DdConfig::default()).unwrap();
        assert!(restored.var_order().is_identity());
    }

    #[test]
    fn non_permutation_order_section_is_rejected() {
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 3);
        let mut snap = capture_of(&dd, state, 3);
        snap.order = vec![0, 0, 2];
        assert!(matches!(
            snap.restore(DdConfig::default()),
            Err(SnapshotError::Corrupt(_))
        ));
        snap.order = vec![0, 1];
        assert!(matches!(
            snap.restore(DdConfig::default()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 5);
        let snap = capture_of(&dd, state, 5);
        let dir = std::env::temp_dir().join("ddsim-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ddsnap");
        snap.save(&path).unwrap();
        let read = Snapshot::load(&path).unwrap();
        assert_eq!(read, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_and_replaces_atomically() {
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 4);
        let snap = capture_of(&dd, state, 4);
        let dir = std::env::temp_dir().join("ddsim-snapshot-write-path");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ddsnap");
        let tmp = path.with_extension("tmp");

        // First save: the temp file must not survive a successful write.
        snap.save(&path).unwrap();
        assert!(path.exists());
        assert!(!tmp.exists(), "temp file left behind after save");

        // Overwrite with a different snapshot: the old file is replaced,
        // never appended to or left torn, and loads as the new content.
        let mut dd2 = DdManager::new();
        let state2 = entangled_state(&mut dd2, 6);
        let snap2 = capture_of(&dd2, state2, 6);
        snap2.save(&path).unwrap();
        assert!(!tmp.exists());
        let read = Snapshot::load(&path).unwrap();
        assert_eq!(read, snap2);
        assert_ne!(read, snap);

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn save_into_missing_directory_fails_without_droppings() {
        let mut dd = DdManager::new();
        let state = entangled_state(&mut dd, 3);
        let snap = capture_of(&dd, state, 3);
        let dir = std::env::temp_dir().join("ddsim-snapshot-no-such-dir");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("ckpt.ddsnap");
        assert!(matches!(snap.save(&path), Err(SnapshotError::Io(_))));
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn sync_parent_dir_handles_bare_and_nested_paths() {
        // A bare filename has no parent component; the helper must fall
        // back to "." instead of erroring.
        sync_parent_dir(Path::new("just-a-name.ddsnap")).unwrap();
        let dir = std::env::temp_dir().join("ddsim-snapshot-syncdir");
        std::fs::create_dir_all(&dir).unwrap();
        sync_parent_dir(&dir.join("f.ddsnap")).unwrap();
        std::fs::remove_dir(&dir).ok();
    }
}

//! Zero-sized governance policies for the DD operation kernels.
//!
//! PR 4's resource governor threaded `Result<Edge, DdError>` through every
//! recursion in `ops.rs` / `apply.rs`, which cost measurable time even on
//! runs that never configure a budget (+13% MxV, +23% MxM; see
//! BENCH_PR4.json): the fallible signature forces a discriminant check and
//! a wider return on every step of the hottest loops in the repo.
//!
//! The fix is to compile the kernels **twice**, monomorphized over a
//! [`Governance`] policy:
//!
//! * [`Governed`] — the result carrier is `Result<T, DdError>`, and
//!   [`Governance::charge`] performs the amortized governor step exactly as
//!   in PR 4 (decrement-and-branch, full check every `CHARGE_INTERVAL`
//!   steps, `last_breach` recording, unwind-safe tables).
//! * [`Ungoverned`] — the result carrier is the bare `T`, `charge` is a
//!   no-op, and `raise` is statically unreachable. The kernels compile back
//!   to infallible `Edge`-returning recursions with zero charge branches —
//!   byte-for-byte the pre-governor code shape.
//!
//! Dispatch between the two happens **once per top-level operation** (in
//! the public entry points of `ops.rs` / `apply.rs`), on
//! `DdManager::is_governed()` — never per recursion step. A limit armed
//! between operations ([`DdManager::set_deadline`] /
//! [`DdManager::set_cancel_token`](crate::DdManager::set_cancel_token), or
//! budgets in [`DdConfig`](crate::DdConfig)) therefore flips the *next*
//! operation onto the governed instantiation; an operation already in
//! flight on the ungoverned instantiation runs to completion, which is the
//! same promptness contract the amortized countdown already gave.
//!
//! Both instantiations build identical diagrams — the policy only decides
//! whether the governor is consulted — and the property tests in `ops.rs`
//! and `tests/random_circuits_vs_dense.rs` pin that down bitwise.

use std::ops::ControlFlow;

use crate::error::DdError;
use crate::manager::DdManager;

/// A compile-time governance policy. Implemented by the two uninhabited
/// marker types [`Governed`] and [`Ungoverned`]; all methods are
/// `#[inline(always)]` so the policy fully dissolves at monomorphization.
pub(crate) trait Governance {
    /// The result carrier: `Result<T, DdError>` when governed, bare `T`
    /// when not.
    type Res<T>;

    /// Wraps a success value into the carrier.
    fn wrap<T>(v: T) -> Self::Res<T>;

    /// Splits a carrier into continue-with-value or break-with-error, for
    /// the [`gtry!`] macro.
    fn branch<T>(r: Self::Res<T>) -> ControlFlow<DdError, T>;

    /// Injects an error into the carrier. Statically unreachable for
    /// [`Ungoverned`] (its `branch` never breaks).
    fn raise<T>(e: DdError) -> Self::Res<T>;

    /// One amortized governor step ([`DdManager::charge`] when governed, a
    /// no-op otherwise).
    fn charge(dd: &mut DdManager) -> Self::Res<()>;
}

/// The governed instantiation: fallible recursions with PR 4's amortized
/// charge semantics.
pub(crate) enum Governed {}

impl Governance for Governed {
    type Res<T> = Result<T, DdError>;

    #[inline(always)]
    fn wrap<T>(v: T) -> Result<T, DdError> {
        Ok(v)
    }

    #[inline(always)]
    fn branch<T>(r: Result<T, DdError>) -> ControlFlow<DdError, T> {
        match r {
            Ok(v) => ControlFlow::Continue(v),
            Err(e) => ControlFlow::Break(e),
        }
    }

    #[inline(always)]
    fn raise<T>(e: DdError) -> Result<T, DdError> {
        Err(e)
    }

    #[inline(always)]
    fn charge(dd: &mut DdManager) -> Result<(), DdError> {
        dd.charge()
    }
}

/// The ungoverned instantiation: infallible recursions, zero charge
/// branches.
pub(crate) enum Ungoverned {}

impl Governance for Ungoverned {
    type Res<T> = T;

    #[inline(always)]
    fn wrap<T>(v: T) -> T {
        v
    }

    #[inline(always)]
    fn branch<T>(r: T) -> ControlFlow<DdError, T> {
        ControlFlow::Continue(r)
    }

    #[inline(always)]
    fn raise<T>(e: DdError) -> T {
        unreachable!("ungoverned kernels cannot fail: {e}")
    }

    #[inline(always)]
    fn charge(_dd: &mut DdManager) {}
}

/// `?` for [`Governance`] carriers: unwraps the continue value, or
/// early-returns `G::raise(e)` from the enclosing `G`-generic function.
/// Resolves `G` at the expansion site, so it is only usable inside
/// functions with a `G: Governance` parameter (which is every kernel).
macro_rules! gtry {
    ($e:expr) => {
        match G::branch($e) {
            ::std::ops::ControlFlow::Continue(v) => v,
            ::std::ops::ControlFlow::Break(e) => return G::raise(e),
        }
    };
}
pub(crate) use gtry;

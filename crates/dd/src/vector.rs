//! Construction and inspection of vector decision diagrams (quantum states).

use std::collections::{HashMap, HashSet};

use ddsim_complex::{Complex, ComplexId};

use crate::edge::{Level, NodeId, VecEdge};
use crate::manager::DdManager;

impl DdManager {
    /// Builds the computational-basis state `|index⟩` over `n` qubits.
    ///
    /// Bit `n-1-q` of `index` is the value of qubit `q` (qubit 0 is the
    /// topmost / most significant, as in the paper's figures) — regardless
    /// of the manager's current variable order, which only changes which
    /// *level* hosts each qubit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n` or `n == 0` or `n > 63`.
    pub fn vec_basis(&mut self, n: u32, index: u64) -> VecEdge {
        assert!((1..=63).contains(&n), "qubit count out of range");
        assert!(index < (1u64 << n), "basis index out of range");
        let mut edge = VecEdge::terminal(ComplexId::ONE);
        for level in 1..=n {
            let bit = (index >> (n - 1 - self.var_order.qubit_at(n, level))) & 1;
            let children = if bit == 0 {
                [edge, VecEdge::ZERO]
            } else {
                [VecEdge::ZERO, edge]
            };
            edge = self.make_vec_node(level, children);
        }
        edge
    }

    /// Builds the all-zeros state `|0…0⟩` over `n` qubits.
    pub fn vec_zero_state(&mut self, n: u32) -> VecEdge {
        self.vec_basis(n, 0)
    }

    /// Builds the uniform superposition `H^{⊗n}|0…0⟩` directly — one node
    /// per level, no gate applications.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn vec_uniform(&mut self, n: u32) -> VecEdge {
        assert!((1..=63).contains(&n), "qubit count out of range");
        let mut edge = VecEdge::terminal(ComplexId::ONE);
        for level in 1..=n {
            edge = self.make_vec_node(level, [edge, edge]);
        }
        let amplitude = self.intern(Complex::real(1.0 / ((1u64 << n) as f64).sqrt()));
        VecEdge {
            node: edge.node,
            weight: self.complex.mul(edge.weight, amplitude),
        }
    }

    /// Builds a state vector from `2^n` dense amplitudes.
    ///
    /// Intended for tests and small instances: the input is exponential in
    /// the qubit count.
    ///
    /// # Panics
    ///
    /// Panics if the length of `amplitudes` is not a power of two.
    pub fn vec_from_amplitudes(&mut self, amplitudes: &[Complex]) -> VecEdge {
        assert!(
            amplitudes.len().is_power_of_two() && amplitudes.len() >= 2,
            "amplitude vector length must be a power of two >= 2"
        );
        let n = amplitudes.len().trailing_zeros();
        if self.var_order.is_identity() {
            return self.vec_from_slice(amplitudes, n);
        }
        // Gather into internal path order (level ℓ's branch in bit ℓ-1),
        // then run the plain half-split recursion.
        let permuted: Vec<Complex> = (0..amplitudes.len() as u64)
            .map(|p| amplitudes[self.var_order.external_index(n, p) as usize])
            .collect();
        self.vec_from_slice(&permuted, n)
    }

    fn vec_from_slice(&mut self, amplitudes: &[Complex], level: Level) -> VecEdge {
        if level == 0 {
            let w = self.intern(amplitudes[0]);
            return if w.is_zero() {
                VecEdge::ZERO
            } else {
                VecEdge::terminal(w)
            };
        }
        let half = amplitudes.len() / 2;
        let lo = self.vec_from_slice(&amplitudes[..half], level - 1);
        let hi = self.vec_from_slice(&amplitudes[half..], level - 1);
        self.make_vec_node(level, [lo, hi])
    }

    /// The amplitude of basis state `index` in the vector denoted by `e`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the edge's level.
    pub fn vec_amplitude(&self, e: VecEdge, index: u64) -> Complex {
        let level = self.vec_level(e);
        assert!(index < (1u64 << level), "basis index out of range");
        let internal = self.var_order.internal_index(level, index);
        let mut weight = self.complex_value(e.weight);
        let mut node_id = e.node;
        let mut lvl = level;
        while !node_id.is_terminal() {
            let node = self.vec_node(node_id);
            let bit = (internal >> (lvl - 1)) & 1;
            let child = node.edges[bit as usize];
            weight *= self.complex_value(child.weight);
            node_id = child.node;
            lvl -= 1;
            if child.is_zero() {
                return Complex::ZERO;
            }
        }
        weight
    }

    /// Materializes all `2^level` amplitudes, indexed by the external basis
    /// convention (tests / small instances only).
    pub fn vec_to_amplitudes(&self, e: VecEdge) -> Vec<Complex> {
        let level = self.vec_level(e);
        let mut out = vec![Complex::ZERO; 1usize << level];
        self.fill_amplitudes(e, Complex::ONE, 0, level, &mut out);
        if !self.var_order.is_identity() && level > 0 {
            // `fill_amplitudes` walks paths, i.e. internal order: scatter
            // to external basis indices.
            let mut external = vec![Complex::ZERO; out.len()];
            for (p, amp) in out.iter().enumerate() {
                external[self.var_order.external_index(level, p as u64) as usize] = *amp;
            }
            out = external;
        }
        out
    }

    fn fill_amplitudes(
        &self,
        e: VecEdge,
        acc: Complex,
        offset: u64,
        level: Level,
        out: &mut [Complex],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.complex_value(e.weight);
        if e.node.is_terminal() {
            out[offset as usize] = acc;
            return;
        }
        let node = *self.vec_node(e.node);
        debug_assert_eq!(node.level, level);
        let half = 1u64 << (level - 1);
        self.fill_amplitudes(
            VecEdge {
                node: node.edges[0].node,
                weight: node.edges[0].weight,
            },
            acc,
            offset,
            level - 1,
            out,
        );
        self.fill_amplitudes(
            VecEdge {
                node: node.edges[1].node,
                weight: node.edges[1].weight,
            },
            acc,
            offset + half,
            level - 1,
            out,
        );
    }

    /// Squared L2 norm of the vector (1.0 for a normalized quantum state).
    pub fn vec_norm_sqr(&self, e: VecEdge) -> f64 {
        let mut cache: HashMap<NodeId, f64> = HashMap::new();
        self.norm_sqr_rec(e.node, &mut cache) * self.complex_value(e.weight).norm_sqr()
    }

    pub(crate) fn norm_sqr_rec(&self, node: NodeId, cache: &mut HashMap<NodeId, f64>) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&v) = cache.get(&node) {
            return v;
        }
        let n = *self.vec_node(node);
        let mut total = 0.0;
        for child in n.edges {
            if !child.is_zero() {
                total += self.complex_value(child.weight).norm_sqr()
                    * self.norm_sqr_rec(child.node, cache);
            }
        }
        cache.insert(node, total);
        total
    }

    /// Inner product `⟨a|b⟩` of two vectors of equal level.
    ///
    /// # Panics
    ///
    /// Panics if the edges have different levels.
    pub fn vec_inner_product(&mut self, a: VecEdge, b: VecEdge) -> Complex {
        assert_eq!(
            self.vec_level(a),
            self.vec_level(b),
            "inner product of vectors with different levels"
        );
        let mut cache = HashMap::new();
        self.inner_rec(a, b, &mut cache)
    }

    fn inner_rec(
        &mut self,
        a: VecEdge,
        b: VecEdge,
        cache: &mut HashMap<(VecEdge, VecEdge), Complex>,
    ) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            return self.complex_value(a.weight).conj() * self.complex_value(b.weight);
        }
        if let Some(&v) = cache.get(&(a, b)) {
            return v;
        }
        let an = *self.vec_node(a.node);
        let bn = *self.vec_node(b.node);
        let wa = self.complex_value(a.weight).conj();
        let wb = self.complex_value(b.weight);
        let mut total = Complex::ZERO;
        for i in 0..2 {
            total += self.inner_rec(an.edges[i], bn.edges[i], cache);
        }
        let result = total * (wa * wb);
        cache.insert((a, b), result);
        result
    }

    /// Fidelity `|⟨a|b⟩|²` between two states.
    pub fn vec_fidelity(&mut self, a: VecEdge, b: VecEdge) -> f64 {
        self.vec_inner_product(a, b).norm_sqr()
    }

    /// Number of distinct nodes reachable from `e` (excluding the terminal).
    ///
    /// This is the paper's "size of the DD" for vectors.
    pub fn vec_node_count(&self, e: VecEdge) -> usize {
        let mut seen = HashSet::new();
        self.count_vec_rec(e.node, &mut seen);
        seen.len()
    }

    fn count_vec_rec(&self, node: NodeId, seen: &mut HashSet<NodeId>) {
        if node.is_terminal() || !seen.insert(node) {
            return;
        }
        let n = *self.vec_node(node);
        for child in n.edges {
            self.count_vec_rec(child.node, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_state_amplitudes() {
        let mut dd = DdManager::new();
        let e = dd.vec_basis(3, 0b011);
        let amps = dd.vec_to_amplitudes(e);
        for (i, a) in amps.iter().enumerate() {
            if i == 0b011 {
                assert!(a.approx_eq(Complex::ONE, 1e-12));
            } else {
                assert!(a.approx_eq(Complex::ZERO, 1e-12));
            }
        }
        assert!((dd.vec_norm_sqr(e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn basis_states_share_nodes() {
        let mut dd = DdManager::new();
        let a = dd.vec_basis(4, 0);
        let b = dd.vec_basis(4, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn from_amplitudes_roundtrip() {
        let mut dd = DdManager::new();
        let amps = vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(-0.5, 0.0),
            Complex::new(0.0, -0.5),
        ];
        let e = dd.vec_from_amplitudes(&amps);
        let back = dd.vec_to_amplitudes(e);
        for (x, y) in amps.iter().zip(back.iter()) {
            assert!(x.approx_eq(*y, 1e-10));
        }
    }

    #[test]
    fn node_sharing_for_repeated_subvectors() {
        let mut dd = DdManager::new();
        // [1, 1, 1, 1]/2: maximal sharing, one node per level.
        let amps = vec![Complex::real(0.5); 4];
        let e = dd.vec_from_amplitudes(&amps);
        assert_eq!(dd.vec_node_count(e), 2);
    }

    #[test]
    fn scalar_multiples_share_nodes() {
        let mut dd = DdManager::new();
        // [1, 2] and [2, 4] are multiples: same node, different edge weight.
        let a = dd.vec_from_amplitudes(&[Complex::real(1.0), Complex::real(2.0)]);
        let b = dd.vec_from_amplitudes(&[Complex::real(2.0), Complex::real(4.0)]);
        assert_eq!(a.node, b.node);
        assert_ne!(a.weight, b.weight);
    }

    #[test]
    fn inner_product_orthogonal_and_self() {
        let mut dd = DdManager::new();
        let a = dd.vec_basis(2, 0);
        let b = dd.vec_basis(2, 3);
        assert!(dd.vec_inner_product(a, b).approx_eq(Complex::ZERO, 1e-12));
        assert!(dd.vec_inner_product(a, a).approx_eq(Complex::ONE, 1e-12));
        assert!((dd.vec_fidelity(a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_query_matches_dense() {
        let mut dd = DdManager::new();
        let amps = vec![
            Complex::new(0.1, 0.2),
            Complex::new(0.3, -0.1),
            Complex::new(-0.2, 0.4),
            Complex::new(0.0, 0.0),
            Complex::new(0.5, 0.5),
            Complex::new(-0.1, -0.3),
            Complex::new(0.2, 0.0),
            Complex::new(0.0, 0.1),
        ];
        let e = dd.vec_from_amplitudes(&amps);
        for (i, want) in amps.iter().enumerate() {
            let got = dd.vec_amplitude(e, i as u64);
            assert!(got.approx_eq(*want, 1e-9), "index {i}: {got} vs {want}");
        }
    }
}

//! Dynamic variable reordering: the qubit↔level permutation ([`VarOrder`]),
//! the adjacent-level swap primitive, and the sifting driver.
//!
//! # Why the swap is a rebuild, not an in-place splice
//!
//! In an edge-weighted DD the classic BDD trick — patch the two affected
//! unique-table levels in place — is unsound without parent lists: after
//! shuffling grandchildren, the rebuilt upper node can need a *pure-phase*
//! normalization factor (e.g. amplitudes `[0.5, 1, i, 0]` rebuild to
//! children whose pivot is `i`), and that factor would have to cascade into
//! every parent edge. Instead, [`DdManager::swap_levels`] is *functional*:
//! it returns a **new** canonical edge denoting the same quantum state under
//! the exchanged order, built through [`DdManager::make_vec_node`] so
//! hash-consing, normalization, and `norm_sqr` interning hold by
//! construction. Nodes strictly below the swapped pair are shared untouched;
//! the two affected levels are locally rebuilt; levels above are re-created
//! transparently (and usually re-found in the unique table). Cost is
//! O(nodes at or above the lower swapped level); the displaced old nodes
//! become garbage and are reclaimed by the next collection, with the
//! epoch scheme keeping the compute tables sound as always.
//!
//! No matrix-DD swap is needed: matrices are built *per gate* at the levels
//! the current [`VarOrder`] dictates, and the engine never reorders while a
//! matrix product is pending. Compute-table entries and interned apply-ops
//! are pure level-space facts about diagrams, so they stay valid across a
//! reorder — only the qubit→level *interpretation* changes.

use std::collections::HashMap;

use crate::edge::{Level, NodeId, VecEdge};
use crate::manager::DdManager;

/// The qubit↔level permutation of a manager.
///
/// Level `n` is the topmost; under the *identity* order qubit `q` (0-based
/// from the top, as everywhere in this codebase) lives at level `n - q`.
/// The identity order is stored as an empty vector and is *parametric* in
/// the width; a non-identity order pins the width `n` and every qubit-indexed
/// accessor asserts it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarOrder {
    /// `level_to_qubit[ℓ - 1]` is the qubit at level `ℓ`; empty = identity.
    level_to_qubit: Vec<u32>,
    /// `qubit_to_level[q]` is the level of qubit `q`; empty = identity.
    qubit_to_level: Vec<Level>,
}

impl VarOrder {
    /// The identity order (qubit `q` at level `n - q`, any width).
    pub fn identity() -> Self {
        VarOrder::default()
    }

    /// Builds an order from an explicit level→qubit map
    /// (`level_to_qubit[ℓ - 1]` = qubit at level `ℓ`).
    ///
    /// # Panics
    ///
    /// Panics if the map is not a permutation of `0..len`.
    pub fn from_level_map(level_to_qubit: Vec<u32>) -> Self {
        let n = level_to_qubit.len();
        let mut qubit_to_level = vec![Level::MAX; n];
        for (i, &q) in level_to_qubit.iter().enumerate() {
            assert!(
                (q as usize) < n && qubit_to_level[q as usize] == Level::MAX,
                "level map is not a permutation"
            );
            qubit_to_level[q as usize] = i as Level + 1;
        }
        let mut order = VarOrder {
            level_to_qubit,
            qubit_to_level,
        };
        order.normalize();
        order
    }

    /// Collapses an explicit map that equals the identity back to the
    /// parametric (empty) representation, so "reordered back to circuit
    /// order" and "never reordered" compare equal and serialize identically.
    fn normalize(&mut self) {
        let n = self.level_to_qubit.len() as u32;
        let identity = self
            .level_to_qubit
            .iter()
            .enumerate()
            .all(|(i, &q)| q == n - 1 - i as u32);
        if identity {
            self.level_to_qubit.clear();
            self.qubit_to_level.clear();
        }
    }

    /// Whether this is the identity order.
    pub fn is_identity(&self) -> bool {
        self.level_to_qubit.is_empty()
    }

    /// The pinned width, or `None` for the parametric identity order.
    pub fn width(&self) -> Option<u32> {
        if self.is_identity() {
            None
        } else {
            Some(self.level_to_qubit.len() as u32)
        }
    }

    #[inline]
    fn check_width(&self, n: u32) {
        debug_assert!(
            self.is_identity() || self.level_to_qubit.len() == n as usize,
            "variable order is pinned to width {}, used with width {n}",
            self.level_to_qubit.len()
        );
    }

    /// The qubit living at `level` in an `n`-qubit system.
    #[inline]
    pub fn qubit_at(&self, n: u32, level: Level) -> u32 {
        debug_assert!(level >= 1 && level <= n);
        if self.is_identity() {
            n - level
        } else {
            self.check_width(n);
            self.level_to_qubit[level as usize - 1]
        }
    }

    /// The level where `qubit` lives in an `n`-qubit system.
    #[inline]
    pub fn level_of(&self, n: u32, qubit: u32) -> Level {
        debug_assert!(qubit < n);
        if self.is_identity() {
            n - qubit
        } else {
            self.check_width(n);
            self.qubit_to_level[qubit as usize]
        }
    }

    /// The explicit level→qubit map for width `n` (materialized even for
    /// the identity order). Entry `ℓ - 1` is the qubit at level `ℓ`.
    pub fn level_map(&self, n: u32) -> Vec<u32> {
        (1..=n).map(|l| self.qubit_at(n, l)).collect()
    }

    /// Exchanges the qubits at levels `l` and `l + 1` (bookkeeping only —
    /// [`DdManager::swap_levels`] is what rebuilds the diagrams).
    pub(crate) fn swap_adjacent(&mut self, n: u32, l: Level) {
        assert!(l >= 1 && l < n, "swap level out of range");
        if self.is_identity() {
            self.level_to_qubit = (0..n).map(|i| n - 1 - i).collect();
            self.qubit_to_level = (0..n).map(|q| n - q).collect();
        } else {
            self.check_width(n);
        }
        self.level_to_qubit.swap(l as usize - 1, l as usize);
        let (qa, qb) = (
            self.level_to_qubit[l as usize - 1],
            self.level_to_qubit[l as usize],
        );
        self.qubit_to_level[qa as usize] = l;
        self.qubit_to_level[qb as usize] = l + 1;
        self.normalize();
    }

    /// Maps an external basis index (qubit `q` in bit `n - 1 - q`, the
    /// convention of every public accessor) to the internal path index the
    /// DD's levels spell out (level `ℓ`'s branch in bit `ℓ - 1`). The two
    /// coincide under the identity order.
    #[inline]
    pub fn internal_index(&self, n: u32, external: u64) -> u64 {
        if self.is_identity() {
            return external;
        }
        self.check_width(n);
        let mut internal = 0u64;
        for level in 1..=n {
            let q = self.level_to_qubit[level as usize - 1];
            internal |= ((external >> (n - 1 - q)) & 1) << (level - 1);
        }
        internal
    }

    /// Inverse of [`internal_index`](Self::internal_index).
    #[inline]
    pub fn external_index(&self, n: u32, internal: u64) -> u64 {
        if self.is_identity() {
            return internal;
        }
        self.check_width(n);
        let mut external = 0u64;
        for level in 1..=n {
            let q = self.level_to_qubit[level as usize - 1];
            external |= ((internal >> (level - 1)) & 1) << (n - 1 - q);
        }
        external
    }
}

/// What a [`DdManager::sift_state`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Adjacent-level swaps performed.
    pub swaps: usize,
    /// State node count on entry.
    pub nodes_before: usize,
    /// State node count on return (never greater than `nodes_before`).
    pub nodes_after: usize,
}

impl DdManager {
    /// Rebuilds `state` with the variables at levels `l` and `l + 1`
    /// exchanged, and records the exchange in the manager's [`VarOrder`].
    ///
    /// Returns a new canonical edge denoting the *same quantum state* under
    /// the new order. Does **not** touch external reference counts: callers
    /// pin the returned edge and release the old one as usual. Any other
    /// vector edges the caller holds still denote their old diagrams but
    /// are interpreted under the *new* order by the qubit-indexed
    /// accessors — rebuild or discard them.
    ///
    /// # Panics
    ///
    /// Panics if `l` is 0 or `l + 1` exceeds the state's level.
    pub fn swap_levels(&mut self, state: VecEdge, l: Level) -> VecEdge {
        let n = self.vec_level(state);
        assert!(l >= 1 && l < n, "swap level out of range for state");
        let mut memo: HashMap<NodeId, VecEdge> = HashMap::new();
        let unit = self.swap_unit(state.node, l, &mut memo);
        let weight = self.complex.mul(unit.weight, state.weight);
        self.var_order.swap_adjacent(n, l);
        VecEdge {
            node: unit.node,
            weight,
        }
    }

    /// Memoized functional swap below one node (incoming weight factored
    /// out, like the projection recursion in `measure.rs`).
    fn swap_unit(&mut self, id: NodeId, l: Level, memo: &mut HashMap<NodeId, VecEdge>) -> VecEdge {
        if let Some(&unit) = memo.get(&id) {
            return unit;
        }
        let node = *self.vec_node(id);
        debug_assert!(node.level > l, "swap recursion descended past the pair");
        let unit = if node.level == l + 1 {
            // The local 2x2 shuffle: with children a = edges[0], b = edges[1]
            // at level l, the swapped node's branch-y child is
            // [f(a, y), f(b, y)] where f(child, y) = child.weight ·
            // child.edges[y]. QMDDs never skip levels, so the children are
            // real nodes (or zero) exactly at level l.
            let [a, b] = node.edges;
            let drop_weight = self.config.fault == crate::FaultKind::SwapDropsChildWeight;
            let f = |dd: &mut Self, child: VecEdge, y: usize| -> VecEdge {
                if child.is_zero() {
                    return VecEdge::ZERO;
                }
                let g = dd.vec_node(child.node).edges[y];
                if g.is_zero() {
                    return VecEdge::ZERO;
                }
                let weight = if drop_weight {
                    // Injected fault: the child's edge weight is not folded
                    // into the grandchildren, corrupting every amplitude
                    // whose path weight differs from the sibling's.
                    g.weight
                } else {
                    dd.complex.mul(child.weight, g.weight)
                };
                VecEdge {
                    node: g.node,
                    weight,
                }
            };
            let f00 = f(self, a, 0);
            let f10 = f(self, b, 0);
            let f01 = f(self, a, 1);
            let f11 = f(self, b, 1);
            let lo = self.make_vec_node(l, [f00, f10]);
            let hi = self.make_vec_node(l, [f01, f11]);
            self.make_vec_node(l + 1, [lo, hi])
        } else {
            let mut swapped = [VecEdge::ZERO; 2];
            for (i, child) in node.edges.iter().enumerate() {
                if child.is_zero() {
                    continue;
                }
                let unit = self.swap_unit(child.node, l, memo);
                swapped[i] = VecEdge {
                    node: unit.node,
                    weight: self.complex.mul(unit.weight, child.weight),
                };
            }
            self.make_vec_node(node.level, swapped)
        };
        memo.insert(id, unit);
        unit
    }

    /// Sifting (Rudell-style) over the state: each variable in turn is
    /// moved through every level via adjacent swaps, the total node count is
    /// tracked at each position, and the variable settles at the best
    /// position seen (its entry position wins ties). The best diagram is
    /// kept pinned and returned *as built* — not re-derived through reverse
    /// swaps, whose slightly different weight-product paths could re-bucket
    /// near-equal weights in the tolerance-based complex table and change
    /// the node count. The result is therefore never larger than the entry
    /// diagram, exactly.
    ///
    /// `max_swaps` bounds the effort: no new per-variable pass starts once
    /// the budget is spent (a pass in flight completes, so the overshoot is
    /// at most `3n` swaps). A full sift costs at most `~3n²` swaps. Pass
    /// `usize::MAX` for an unbounded sift.
    ///
    /// Reference handling: the caller's pin on `state` is transferred to
    /// the returned edge (the input is released unless no swap happened
    /// and the input is returned unchanged).
    pub fn sift_state(&mut self, state: VecEdge, max_swaps: usize) -> (VecEdge, ReorderStats) {
        let n = self.vec_level(state);
        let nodes_before = self.vec_node_count(state);
        let mut stats = ReorderStats {
            swaps: 0,
            nodes_before,
            nodes_after: nodes_before,
        };
        if n < 2 || state.is_zero() || max_swaps == 0 {
            return (state, stats);
        }
        let mut cur = state;
        let mut cur_count = nodes_before;
        for q in 0..n {
            if stats.swaps >= max_swaps {
                break;
            }
            let start = self.var_order.level_of(n, q);
            // Pin the best diagram seen (entry position wins ties) together
            // with its order, and jump back to it at pass end.
            let mut best = cur;
            let mut best_order = self.var_order.clone();
            let mut best_count = cur_count;
            self.inc_ref_vec(best);
            let mut pos = start;
            // Down to level 1 …
            for l in (1..start).rev() {
                cur = self.swap_step(cur, l, &mut stats);
                pos = l;
                cur_count = self.vec_node_count(cur);
                if cur_count < best_count {
                    self.dec_ref_vec(best);
                    best = cur;
                    best_order = self.var_order.clone();
                    best_count = cur_count;
                    self.inc_ref_vec(best);
                }
            }
            // … up to level n …
            for l in pos..n {
                cur = self.swap_step(cur, l, &mut stats);
                cur_count = self.vec_node_count(cur);
                if cur_count < best_count {
                    self.dec_ref_vec(best);
                    best = cur;
                    best_order = self.var_order.clone();
                    best_count = cur_count;
                    self.inc_ref_vec(best);
                }
            }
            // … and back to the best diagram, releasing the walk's endpoint
            // (if the endpoint IS the best, it simply sheds its extra pin).
            self.dec_ref_vec(cur);
            cur = best;
            cur_count = best_count;
            self.var_order = best_order;
        }
        stats.nodes_after = cur_count;
        (cur, stats)
    }

    /// Restores the identity (circuit) order by bubbling each variable back
    /// to its home level. Used by tests to prove the round trip is
    /// bitwise-identical; same reference-handling contract as
    /// [`sift_state`](Self::sift_state).
    pub fn restore_identity_order(&mut self, state: VecEdge) -> VecEdge {
        let n = self.vec_level(state);
        let mut cur = state;
        let mut stats = ReorderStats::default();
        // Selection-sort the order: put qubit 0 at level n, then qubit 1 at
        // level n-1, and so on.
        for q in 0..n {
            let home = n - q;
            while self.var_order.level_of(n, q) < home {
                let l = self.var_order.level_of(n, q);
                cur = self.swap_step(cur, l, &mut stats);
            }
        }
        debug_assert!(self.var_order.is_identity());
        cur
    }

    fn swap_step(&mut self, cur: VecEdge, l: Level, stats: &mut ReorderStats) -> VecEdge {
        let next = self.swap_levels(cur, l);
        self.inc_ref_vec(next);
        self.dec_ref_vec(cur);
        stats.swaps += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_complex::Complex;

    /// Amplitudes with distinct magnitudes and phases on every index, so
    /// any dropped weight or misrouted path shows up.
    fn ragged_state(dd: &mut DdManager, n: u32) -> (VecEdge, Vec<Complex>) {
        let dim = 1usize << n;
        let amps: Vec<Complex> = (0..dim)
            .map(|i| Complex::from_polar(0.1 + i as f64, 0.31 * i as f64))
            .collect();
        let e = dd.vec_from_amplitudes(&amps);
        (e, amps)
    }

    #[test]
    fn var_order_identity_is_parametric_and_normalized() {
        let order = VarOrder::identity();
        assert!(order.is_identity());
        assert_eq!(order.qubit_at(5, 5), 0);
        assert_eq!(order.level_of(5, 4), 1);
        assert_eq!(order.qubit_at(3, 3), 0); // any width
        let explicit = VarOrder::from_level_map(vec![2, 1, 0]);
        assert!(explicit.is_identity(), "identity map collapses to empty");
        let mut swapped = VarOrder::identity();
        swapped.swap_adjacent(3, 1);
        assert!(!swapped.is_identity());
        assert_eq!(swapped.qubit_at(3, 1), 1);
        assert_eq!(swapped.qubit_at(3, 2), 2);
        swapped.swap_adjacent(3, 1);
        assert!(swapped.is_identity(), "swap-back re-normalizes");
    }

    #[test]
    fn index_mapping_round_trips() {
        let mut order = VarOrder::identity();
        order.swap_adjacent(4, 2);
        order.swap_adjacent(4, 1);
        for i in 0..16u64 {
            assert_eq!(order.external_index(4, order.internal_index(4, i)), i);
            assert_eq!(order.internal_index(4, order.external_index(4, i)), i);
        }
    }

    #[test]
    fn swap_preserves_amplitudes_through_order_aware_accessors() {
        let mut dd = DdManager::new();
        let n = 4;
        let (mut e, amps) = ragged_state(&mut dd, n);
        dd.inc_ref_vec(e);
        for l in [1, 3, 2, 2, 1] {
            let next = dd.swap_levels(e, l);
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(e);
            e = next;
            dd.audit().unwrap();
            for (i, want) in amps.iter().enumerate() {
                let got = dd.vec_amplitude(e, i as u64);
                assert!(
                    got.approx_eq(*want, 1e-9),
                    "index {i} after swap {l}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn double_swap_is_bitwise_identity() {
        let mut dd = DdManager::new();
        let (e, _) = ragged_state(&mut dd, 5);
        dd.inc_ref_vec(e);
        let once = dd.swap_levels(e, 3);
        let twice = dd.swap_levels(once, 3);
        assert_eq!(e, twice, "swap-swap must reproduce the identical edge");
        assert!(dd.var_order().is_identity());
    }

    #[test]
    fn sift_never_increases_and_round_trip_is_bitwise_identical() {
        let mut dd = DdManager::new();
        let (e, amps) = ragged_state(&mut dd, 4);
        dd.inc_ref_vec(e);
        let original = e;
        // Keep the original pinned so the round trip can re-find its nodes.
        dd.inc_ref_vec(original);
        let (sifted, stats) = dd.sift_state(e, usize::MAX);
        assert!(stats.nodes_after <= stats.nodes_before);
        dd.audit().unwrap();
        for (i, want) in amps.iter().enumerate() {
            let got = dd.vec_amplitude(sifted, i as u64);
            assert!(got.approx_eq(*want, 1e-9), "index {i}");
        }
        let back = dd.restore_identity_order(sifted);
        assert_eq!(back, original, "round trip must be bitwise-identical");
        dd.audit().unwrap();
    }

    /// Bell-pair ladder between qubit i and qubit i+k: linear-size DD when
    /// partners are adjacent, exponential in circuit order. Sifting must
    /// find a ≥2× smaller order.
    #[test]
    fn sifting_shrinks_a_bell_ladder_at_least_2x() {
        let mut dd = DdManager::new();
        let k = 5;
        let n = 2 * k;
        let h = Complex::SQRT2_INV;
        let mut state = dd.vec_zero_state(n);
        for i in 0..k {
            state = dd.apply_single_qubit(i, [[h, h], [h, -h]], state).unwrap();
            state = dd
                .apply_controlled(
                    &[crate::Control::pos(i)],
                    i + k,
                    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
                    state,
                )
                .unwrap();
            // A phase so child weights are not all ONE.
            let phase = Complex::from_polar(1.0, 0.2 + 0.3 * i as f64);
            state = dd
                .apply_single_qubit(
                    i,
                    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, phase]],
                    state,
                )
                .unwrap();
        }
        dd.inc_ref_vec(state);
        let before = dd.vec_node_count(state);
        let (sifted, stats) = dd.sift_state(state, usize::MAX);
        dd.audit().unwrap();
        assert!(
            stats.nodes_after * 2 <= before,
            "sifting must at least halve the Bell ladder: {before} -> {}",
            stats.nodes_after
        );
        let norm = dd.vec_norm_sqr(sifted);
        assert!((norm - 1.0).abs() < 1e-9, "norm drifted to {norm}");
    }

    #[test]
    fn sift_effort_bound_limits_swaps() {
        let mut dd = DdManager::new();
        let (e, _) = ragged_state(&mut dd, 6);
        dd.inc_ref_vec(e);
        let (_, stats) = dd.sift_state(e, 5);
        // One pass may overshoot by up to 3n, but a second must not start.
        assert!(stats.swaps <= 5 + 3 * 6, "swaps: {}", stats.swaps);
    }

    #[test]
    fn swap_survives_garbage_collection() {
        let mut dd = DdManager::new();
        let (mut e, amps) = ragged_state(&mut dd, 4);
        dd.inc_ref_vec(e);
        for l in [1, 2, 3] {
            let next = dd.swap_levels(e, l);
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(e);
            e = next;
            dd.collect_garbage();
            dd.audit().unwrap();
        }
        for (i, want) in amps.iter().enumerate() {
            let got = dd.vec_amplitude(e, i as u64);
            assert!(got.approx_eq(*want, 1e-9), "index {i}");
        }
    }
}

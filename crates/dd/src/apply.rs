//! Specialized gate-application kernels that never build a gate matrix.
//!
//! A padded elementary gate `I ⊗ U ⊗ I` is almost entirely identity: the
//! generic [`mat_vec_mul`](crate::DdManager::mat_vec_mul) recursion walks
//! matrix and state in lockstep through every one of those identity levels,
//! paying compute-table lookups and trivial additions just to copy the
//! state. The kernels here descend the *state* DD alone: levels above the
//! gate recurse with two child calls and no additions, control levels
//! recurse into the firing branch only, and the target level combines the
//! two whole sub-state edges with scalar weights — work proportional to the
//! state structure above the gate, independent of how many identity levels
//! sit below it.
//!
//! Results are memoized in the `apply_gate` compute table, keyed on an
//! interned *operation tag* plus the state node. Tags are allocated per
//! distinct `(target level, controls, 2x2 weights)` signature, so repeated
//! applications of the same gate hit the cache even across circuit layers,
//! without a matrix DD to key on. Even tags cache the application
//! recursion; the tag plus one caches the control-projection recursion used
//! for controls below the target.

use std::collections::HashMap;

use ddsim_complex::{Complex, ComplexId};

use crate::edge::{Level, NodeId, VecEdge};
use crate::error::DdError;
use crate::govern::{gtry, Governance, Governed, Ungoverned};
use crate::manager::DdManager;
use crate::matrix::{Control, ControlPolarity, Matrix2};
use crate::ops::live;

/// A canonical specialized-gate signature: everything the kernel needs,
/// with weights interned so equality is id equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ApplySignature {
    target_level: Level,
    /// `(level, fires_on_one)` pairs, sorted by level descending.
    controls: Vec<(Level, bool)>,
    weights: [ComplexId; 4],
}

/// One interned operation, split into what each recursion phase consumes.
#[derive(Clone, Debug)]
pub(crate) struct ApplyOp {
    /// Cache tag for the application recursion (`tag + 1` caches the
    /// below-target projection recursion).
    tag: u32,
    target_level: Level,
    /// Controls above the target, `(level, fires_on_one)`, level descending.
    ctrls_above: Vec<(Level, bool)>,
    /// Controls below the target, `(level, fires_on_one)`, level descending.
    ctrls_below: Vec<(Level, bool)>,
    /// Interned gate entries `[u00, u01, u10, u11]`.
    w: [ComplexId; 4],
    /// Interned `U − I` entries, used when controls sit below the target
    /// (the `M = I + P ⊗ (U − I)` decomposition restricted to the state).
    d: [ComplexId; 4],
}

/// Signature → tag interning store, owned by the manager. Operations are
/// never invalidated: they reference only interned weights, not nodes.
#[derive(Debug, Default)]
pub(crate) struct ApplyOpRegistry {
    ops: Vec<ApplyOp>,
    sigs: HashMap<ApplySignature, u32>,
}

impl DdManager {
    /// Applies the single-qubit gate `u` on `target` to `state` without
    /// building a matrix DD, descending the state directly and skipping
    /// every identity level.
    ///
    /// Bit-identical to `mat_vec_mul(mat_single_qubit(n, target, u), state)`
    /// (hash-consing and weight interning canonicalize both paths to the
    /// same edges). Falls back to exactly that generic path when
    /// [`DdConfig::identity_skip`](crate::DdConfig) is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range for the state's qubit count.
    pub fn apply_single_qubit(
        &mut self,
        target: u32,
        u: Matrix2,
        state: VecEdge,
    ) -> Result<VecEdge, DdError> {
        self.apply_gate(&[], target, u, state)
    }

    /// Applies the controlled gate (`u` on `target`, firing when every
    /// control matches its polarity) to `state` without building a matrix
    /// DD. Controls above the target restrict the descent to the firing
    /// branch; controls below are handled by a projection recursion over
    /// the target's sub-states.
    ///
    /// Bit-identical to the generic `mat_controlled` + `mat_vec_mul` path;
    /// falls back to it when [`DdConfig::identity_skip`](crate::DdConfig)
    /// is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `target` or a control is out of range, or a control
    /// coincides with the target.
    pub fn apply_controlled(
        &mut self,
        controls: &[Control],
        target: u32,
        u: Matrix2,
        state: VecEdge,
    ) -> Result<VecEdge, DdError> {
        self.apply_gate(controls, target, u, state)
    }

    fn apply_gate(
        &mut self,
        controls: &[Control],
        target: u32,
        u: Matrix2,
        state: VecEdge,
    ) -> Result<VecEdge, DdError> {
        if state.is_zero() {
            return Ok(VecEdge::ZERO);
        }
        let n = self.vec_level(state);
        assert!(target < n, "target qubit out of range");
        for c in controls {
            assert!(c.qubit < n, "control qubit out of range");
            assert_ne!(c.qubit, target, "control coincides with target");
        }
        if !self.config.identity_skip {
            // Ablation path: identical arithmetic to the engine's generic
            // route, so `--no-identity-skip` comparisons are exact.
            let m = if controls.is_empty() {
                self.mat_single_qubit(n, target, u)
            } else {
                self.mat_controlled(n, controls, target, u)
            };
            return self.mat_vec_mul(m, state);
        }
        self.stats.mat_vec_mults += 1;
        self.stats.specialized_applies += 1;
        // One dispatch per top-level gate application, like the entry
        // points in `ops.rs`.
        if self.is_governed() {
            // Entry-point charge: a fully cache-served gate stream must
            // still observe budgets/deadline/cancellation within one
            // interval.
            self.charge()?;
            let op = self.intern_apply_op(n, controls, target, u);
            self.apply_op_edge::<Governed>(&op, state)
        } else {
            let op = self.intern_apply_op(n, controls, target, u);
            Ok(self.apply_op_edge::<Ungoverned>(&op, state))
        }
    }

    /// Interns the operation signature, allocating a fresh tag pair on
    /// first sight.
    fn intern_apply_op(
        &mut self,
        n: u32,
        controls: &[Control],
        target: u32,
        u: Matrix2,
    ) -> ApplyOp {
        let target_level = self.var_order.level_of(n, target);
        let force_positive = self.config.fault == crate::FaultKind::NegativeControlsIgnored;
        let mut ctrls: Vec<(Level, bool)> = controls
            .iter()
            .map(|c| {
                // Injected fault: every control fires on |1⟩.
                (
                    self.var_order.level_of(n, c.qubit),
                    force_positive || c.polarity == ControlPolarity::Positive,
                )
            })
            .collect();
        // Stable sort: the first listed control wins on (pathological)
        // duplicate qubits, matching `mat_controlled`'s `find`.
        ctrls.sort_by_key(|c| std::cmp::Reverse(c.0));
        let weights = [
            self.intern(u[0][0]),
            self.intern(u[0][1]),
            self.intern(u[1][0]),
            self.intern(u[1][1]),
        ];
        let sig = ApplySignature {
            target_level,
            controls: ctrls.clone(),
            weights,
        };
        if let Some(&idx) = self.apply_ops.sigs.get(&sig) {
            return self.apply_ops.ops[idx as usize].clone();
        }
        let d = [
            self.intern(u[0][0] - Complex::ONE),
            weights[1],
            weights[2],
            self.intern(u[1][1] - Complex::ONE),
        ];
        let split = ctrls.partition_point(|&(level, _)| level > target_level);
        let (above, below) = ctrls.split_at(split);
        let idx = u32::try_from(self.apply_ops.ops.len()).expect("apply-op overflow");
        let op = ApplyOp {
            // Two tags per op: even for application, odd for projection.
            tag: idx.checked_mul(2).expect("apply-op tag overflow"),
            target_level,
            ctrls_above: above.to_vec(),
            ctrls_below: below.to_vec(),
            w: weights,
            d,
        };
        self.apply_ops.ops.push(op.clone());
        self.apply_ops.sigs.insert(sig, idx);
        op
    }

    /// Weight-factored, memoized application of `op` to a state edge at or
    /// above the target level.
    fn apply_op_edge<G: Governance>(&mut self, op: &ApplyOp, v: VecEdge) -> G::Res<VecEdge> {
        if v.is_zero() {
            return G::wrap(VecEdge::ZERO);
        }
        debug_assert!(self.vec_level(v) >= op.target_level);
        let outer = v.weight;
        let key = (op.tag, v.node);
        let vfe = &self.vec_arena;
        let unit = if let Some(cached) = self
            .compute
            .apply_gate
            .lookup(&key, |k, r, ep| live(vfe, k.1, ep) && live(vfe, r.node, ep))
        {
            cached
        } else {
            let computed = gtry!(self.apply_op_rec::<G>(op, v.node));
            let epoch = self.epoch;
            self.compute.apply_gate.insert(key, computed, epoch);
            computed
        };
        G::wrap(VecEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, outer),
        })
    }

    fn apply_op_rec<G: Governance>(&mut self, op: &ApplyOp, id: NodeId) -> G::Res<VecEdge> {
        self.stats.mult_recursions += 1;
        gtry!(G::charge(self));
        let node = *self.vec_node(id);
        let [v0, v1] = node.edges;
        if node.level == op.target_level {
            let (lo, hi) = if op.ctrls_below.is_empty() {
                // [u00 u01; u10 u11] acts on the two whole sub-states: four
                // scalar-scaled edges and two additions, nothing below the
                // target is visited.
                let x0 = self.scale_vec(op.w[0], v0);
                let y0 = self.scale_vec(op.w[1], v1);
                let lo = gtry!(self.add_vec_inner::<G>(x0, y0));
                let x1 = self.scale_vec(op.w[2], v0);
                let y1 = self.scale_vec(op.w[3], v1);
                (lo, gtry!(self.add_vec_inner::<G>(x1, y1)))
            } else {
                // M = I + P ⊗ (U − I) restricted to the state: with pᵢ the
                // projection of vᵢ onto the firing control pattern,
                //   lo = v0 + (u00−1)·p0 + u01·p1
                //   hi = v1 + u10·p0 + (u11−1)·p1.
                let p0 = gtry!(self.apply_project_edge::<G>(op, v0));
                let p1 = gtry!(self.apply_project_edge::<G>(op, v1));
                let lo = {
                    let a = self.scale_vec(op.d[0], p0);
                    let a = gtry!(self.add_vec_inner::<G>(v0, a));
                    let b = self.scale_vec(op.d[1], p1);
                    gtry!(self.add_vec_inner::<G>(a, b))
                };
                let hi = {
                    let a = self.scale_vec(op.d[2], p0);
                    let a = gtry!(self.add_vec_inner::<G>(v1, a));
                    let b = self.scale_vec(op.d[3], p1);
                    gtry!(self.add_vec_inner::<G>(a, b))
                };
                (lo, hi)
            };
            return G::wrap(self.make_vec_node(node.level, [lo, hi]));
        }
        let ctrl = op
            .ctrls_above
            .iter()
            .find(|&&(level, _)| level == node.level);
        let (lo, hi) = match ctrl {
            // The gate fires only in the matching branch; the other child
            // passes through untouched.
            Some(&(_, true)) => (v0, gtry!(self.apply_op_edge::<G>(op, v1))),
            Some(&(_, false)) => (gtry!(self.apply_op_edge::<G>(op, v0)), v1),
            None => {
                let lo = gtry!(self.apply_op_edge::<G>(op, v0));
                (lo, gtry!(self.apply_op_edge::<G>(op, v1)))
            }
        };
        G::wrap(self.make_vec_node(node.level, [lo, hi]))
    }

    /// Weight-factored, memoized projection of a below-target state edge
    /// onto `op`'s firing control pattern. Below the lowest control the
    /// projection is the identity and the edge is returned as-is.
    fn apply_project_edge<G: Governance>(&mut self, op: &ApplyOp, v: VecEdge) -> G::Res<VecEdge> {
        if v.is_zero() {
            return G::wrap(VecEdge::ZERO);
        }
        // Invariant (not a reachable failure): callers only enter the
        // projection recursion when `ctrls_below` is non-empty — see
        // `apply_op_rec`'s target-level branch.
        let lowest = op
            .ctrls_below
            .last()
            .expect("projection without below-target controls")
            .0;
        if self.vec_level(v) < lowest {
            return G::wrap(v);
        }
        let outer = v.weight;
        let key = (op.tag + 1, v.node);
        let vfe = &self.vec_arena;
        let unit = if let Some(cached) = self
            .compute
            .apply_gate
            .lookup(&key, |k, r, ep| live(vfe, k.1, ep) && live(vfe, r.node, ep))
        {
            cached
        } else {
            let computed = gtry!(self.apply_project_rec::<G>(op, v.node));
            let epoch = self.epoch;
            self.compute.apply_gate.insert(key, computed, epoch);
            computed
        };
        G::wrap(VecEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, outer),
        })
    }

    fn apply_project_rec<G: Governance>(&mut self, op: &ApplyOp, id: NodeId) -> G::Res<VecEdge> {
        self.stats.mult_recursions += 1;
        gtry!(G::charge(self));
        let node = *self.vec_node(id);
        let [v0, v1] = node.edges;
        let ctrl = op
            .ctrls_below
            .iter()
            .find(|&&(level, _)| level == node.level);
        let (lo, hi) = match ctrl {
            Some(&(_, true)) => (VecEdge::ZERO, gtry!(self.apply_project_edge::<G>(op, v1))),
            Some(&(_, false)) => (gtry!(self.apply_project_edge::<G>(op, v0)), VecEdge::ZERO),
            None => {
                let lo = gtry!(self.apply_project_edge::<G>(op, v0));
                (lo, gtry!(self.apply_project_edge::<G>(op, v1)))
            }
        };
        G::wrap(self.make_vec_node(node.level, [lo, hi]))
    }

    #[inline]
    fn scale_vec(&mut self, w: ComplexId, e: VecEdge) -> VecEdge {
        if w.is_zero() || e.is_zero() {
            VecEdge::ZERO
        } else {
            VecEdge {
                node: e.node,
                weight: self.complex.mul(w, e.weight),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdConfig;

    fn h_gate() -> Matrix2 {
        let h = Complex::SQRT2_INV;
        [[h, h], [h, -h]]
    }

    fn x_gate() -> Matrix2 {
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
    }

    fn t_gate() -> Matrix2 {
        [
            [Complex::ONE, Complex::ZERO],
            [
                Complex::ZERO,
                Complex::new(
                    std::f64::consts::FRAC_1_SQRT_2,
                    std::f64::consts::FRAC_1_SQRT_2,
                ),
            ],
        ]
    }

    /// Specialized and generic application must return the *same edge* —
    /// hash-consing makes state equality edge equality within one manager.
    #[test]
    fn specialized_single_qubit_matches_generic_edges() {
        let mut dd = DdManager::new();
        let n = 6;
        let mut state = dd.vec_basis(n, 0b010011);
        // A few layers to give the state structure first.
        for (target, u) in [(0, h_gate()), (3, h_gate()), (5, t_gate())] {
            let m = dd.mat_single_qubit(n, target, u);
            state = dd.mat_vec_mul(m, state).unwrap();
        }
        for target in 0..n {
            let m = dd.mat_single_qubit(n, target, h_gate());
            let generic = dd.mat_vec_mul(m, state).unwrap();
            let fast = dd.apply_single_qubit(target, h_gate(), state).unwrap();
            assert_eq!(generic, fast, "target {target}");
        }
    }

    #[test]
    fn specialized_controlled_matches_generic_edges() {
        let mut dd = DdManager::new();
        let n = 5;
        let mut state = dd.vec_basis(n, 0);
        for target in 0..n {
            let m = dd.mat_single_qubit(n, target, h_gate());
            state = dd.mat_vec_mul(m, state).unwrap();
        }
        let cases: &[(&[Control], u32)] = &[
            (&[Control::pos(0)], 4),                  // control above target
            (&[Control::pos(4)], 0),                  // control below target
            (&[Control::neg(2)], 3),                  // negative control above
            (&[Control::pos(1), Control::neg(4)], 2), // both sides
            (&[Control::pos(3), Control::pos(4)], 1), // two below
        ];
        for &(controls, target) in cases {
            let m = dd.mat_controlled(n, controls, target, x_gate());
            let generic = dd.mat_vec_mul(m, state).unwrap();
            let fast = dd
                .apply_controlled(controls, target, x_gate(), state)
                .unwrap();
            assert_eq!(generic, fast, "controls {controls:?} target {target}");
        }
    }

    /// The specialized kernel's work must not scale with the number of
    /// identity levels below the gate (the acceptance criterion): applying
    /// a top-qubit gate costs the same recursion count on 8 and on 20
    /// qubits of basis state.
    #[test]
    fn top_qubit_apply_cost_is_independent_of_width() {
        let mut recursions = Vec::new();
        for n in [8u32, 14, 20] {
            let mut dd = DdManager::new();
            let state = dd.vec_basis(n, 0);
            let before = dd.stats().mult_recursions;
            let _ = dd.apply_single_qubit(0, h_gate(), state).unwrap();
            recursions.push(dd.stats().mult_recursions - before);
        }
        assert_eq!(
            recursions[0], recursions[2],
            "specialized apply must not recurse through identity levels: {recursions:?}"
        );
        // Controlled gate on the top two qubits: same property.
        let mut recursions = Vec::new();
        for n in [8u32, 20] {
            let mut dd = DdManager::new();
            let h = dd.mat_single_qubit(n, 0, h_gate());
            let state = {
                let s = dd.vec_basis(n, 0);
                dd.mat_vec_mul(h, s).unwrap()
            };
            let before = dd.stats().mult_recursions;
            let _ = dd
                .apply_controlled(&[Control::pos(0)], 1, x_gate(), state)
                .unwrap();
            recursions.push(dd.stats().mult_recursions - before);
        }
        assert_eq!(recursions[0], recursions[1], "{recursions:?}");
    }

    /// Satellite: every public multiply entry point bumps exactly one
    /// top-level counter, on both the fast and the fallback path.
    #[test]
    fn every_multiply_entry_point_counts_once() {
        for identity_skip in [true, false] {
            let config = DdConfig {
                identity_skip,
                ..DdConfig::default()
            };
            let mut dd = DdManager::with_config(config);
            let n = 4;
            let state = dd.vec_basis(n, 0b1010);
            let h = dd.mat_single_qubit(n, 1, h_gate());
            dd.reset_stats();

            let _ = dd.mat_vec_mul(h, state).unwrap();
            let s = dd.stats();
            assert_eq!((s.mat_vec_mults, s.mat_mat_mults), (1, 0));

            let _ = dd.mat_mat_mul(h, h).unwrap();
            let s = dd.stats();
            assert_eq!((s.mat_vec_mults, s.mat_mat_mults), (1, 1));

            let _ = dd.apply_single_qubit(2, h_gate(), state).unwrap();
            let s = dd.stats();
            assert_eq!((s.mat_vec_mults, s.mat_mat_mults), (2, 1));
            assert_eq!(s.specialized_applies, u64::from(identity_skip));

            let _ = dd
                .apply_controlled(&[Control::pos(0)], 3, x_gate(), state)
                .unwrap();
            let s = dd.stats();
            assert_eq!((s.mat_vec_mults, s.mat_mat_mults), (3, 1));
            assert_eq!(s.specialized_applies, 2 * u64::from(identity_skip));
        }
    }

    #[test]
    fn repeated_application_hits_the_apply_cache() {
        let mut dd = DdManager::new();
        let state = dd.vec_basis(6, 0b101101);
        let first = dd
            .apply_controlled(&[Control::pos(2)], 4, x_gate(), state)
            .unwrap();
        let before = dd.stats().mult_recursions;
        let second = dd
            .apply_controlled(&[Control::pos(2)], 4, x_gate(), state)
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(
            dd.stats().mult_recursions,
            before,
            "second application must be fully cached"
        );
        assert!(dd.stats().cache.apply_gate.hits > 0);
    }

    #[test]
    fn apply_survives_garbage_collection() {
        let mut dd = DdManager::new();
        let mut state = dd.vec_basis(5, 0);
        dd.inc_ref_vec(state);
        for i in 0..5 {
            let next = dd.apply_single_qubit(i, h_gate(), state).unwrap();
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(state);
            state = next;
            dd.collect_garbage();
        }
        let norm = dd.vec_norm_sqr(state);
        assert!((norm - 1.0).abs() < 1e-10, "norm {norm}");
    }
}

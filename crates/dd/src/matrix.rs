//! Construction and inspection of matrix decision diagrams (quantum
//! operations).
//!
//! Elementary gate DDs are linear in the qubit count (one node per level, as
//! the paper's Section III observes); oracle unitaries can additionally be
//! built *directly* from a permutation function or a sparse entry list — the
//! primitive behind the paper's *DD-construct* strategy.

use std::collections::HashSet;

use ddsim_complex::{Complex, ComplexId};

use crate::edge::{Level, MatEdge, NodeId};
use crate::manager::DdManager;

/// A dense 2x2 unitary, row-major: `[[m00, m01], [m10, m11]]`.
pub type Matrix2 = [[Complex; 2]; 2];

/// Polarity of a control qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlPolarity {
    /// Gate fires when the control is |1⟩ (the usual filled dot).
    Positive,
    /// Gate fires when the control is |0⟩ (open dot).
    Negative,
}

/// A control specification: qubit index (0 = topmost) plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Control {
    /// Qubit index, 0-based from the top (most significant).
    pub qubit: u32,
    /// Fire on |1⟩ or |0⟩.
    pub polarity: ControlPolarity,
}

impl Control {
    /// A positive control on `qubit`.
    pub fn pos(qubit: u32) -> Self {
        Control {
            qubit,
            polarity: ControlPolarity::Positive,
        }
    }

    /// A negative control on `qubit`.
    pub fn neg(qubit: u32) -> Self {
        Control {
            qubit,
            polarity: ControlPolarity::Negative,
        }
    }
}

impl DdManager {
    /// The identity matrix DD over `n` qubits (one node per level).
    ///
    /// Served from a per-level cache: each level's canonical identity edge
    /// is built at most once per manager, ref-pinned against garbage
    /// collection, and returned in O(1) afterwards — repeated calls touch
    /// neither the arena nor the unique table.
    pub fn mat_identity(&mut self, n: u32) -> MatEdge {
        while (self.identity_cache.len() as u32) < n {
            let level = self.identity_cache.len() as Level + 1;
            let below = match level {
                1 => MatEdge::terminal(ComplexId::ONE),
                _ => self.identity_cache[level as usize - 2],
            };
            let edge = self.make_mat_node(level, [below, MatEdge::ZERO, MatEdge::ZERO, below]);
            debug_assert!(self.is_identity(edge));
            self.inc_ref_mat(edge);
            self.identity_cache.push(edge);
        }
        match n {
            0 => MatEdge::terminal(ComplexId::ONE),
            _ => self.identity_cache[n as usize - 1],
        }
    }

    /// Builds the `n`-qubit unitary applying the 2x2 matrix `u` to qubit
    /// `target` (identity elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `target >= n`.
    pub fn mat_single_qubit(&mut self, n: u32, target: u32, u: Matrix2) -> MatEdge {
        assert!(target < n, "target qubit out of range");
        let target_level = self.var_order.level_of(n, target);
        let w = [
            self.intern(u[0][0]),
            self.intern(u[0][1]),
            self.intern(u[1][0]),
            self.intern(u[1][1]),
        ];
        let mut edge = MatEdge::terminal(ComplexId::ONE);
        for level in 1..=n {
            if level == target_level {
                let children = [
                    scaled(edge, w[0]),
                    scaled(edge, w[1]),
                    scaled(edge, w[2]),
                    scaled(edge, w[3]),
                ];
                edge = self.make_mat_node(level, children);
            } else {
                edge = self.make_mat_node(level, [edge, MatEdge::ZERO, MatEdge::ZERO, edge]);
            }
        }
        edge
    }

    /// Builds the `n`-qubit controlled unitary: `u` on `target`, firing only
    /// when every control matches its polarity; identity otherwise.
    ///
    /// Uses the decomposition `M = I + P ⊗ (U − I)` where `P` projects onto
    /// the active control pattern — a construction that works for controls
    /// above *and* below the target and costs one small matrix addition.
    ///
    /// # Panics
    ///
    /// Panics if `target >= n`, a control is out of range, or a control
    /// coincides with the target.
    pub fn mat_controlled(
        &mut self,
        n: u32,
        controls: &[Control],
        target: u32,
        u: Matrix2,
    ) -> MatEdge {
        assert!(target < n, "target qubit out of range");
        for c in controls {
            assert!(c.qubit < n, "control qubit out of range");
            assert_ne!(c.qubit, target, "control coincides with target");
        }
        if controls.is_empty() {
            return self.mat_single_qubit(n, target, u);
        }
        let target_level = self.var_order.level_of(n, target);
        // Difference gate D = U - I on the target, projected on controls,
        // identity elsewhere. Built bottom-up like a single-qubit gate.
        let d = [
            self.intern(u[0][0] - Complex::ONE),
            self.intern(u[0][1]),
            self.intern(u[1][0]),
            self.intern(u[1][1] - Complex::ONE),
        ];
        let mut edge = MatEdge::terminal(ComplexId::ONE);
        for level in 1..=n {
            let qubit = self.var_order.qubit_at(n, level);
            if level == target_level {
                let children = [
                    scaled(edge, d[0]),
                    scaled(edge, d[1]),
                    scaled(edge, d[2]),
                    scaled(edge, d[3]),
                ];
                edge = self.make_mat_node(level, children);
            } else if let Some(c) = controls.iter().find(|c| c.qubit == qubit) {
                let children = match c.polarity {
                    ControlPolarity::Positive => {
                        [MatEdge::ZERO, MatEdge::ZERO, MatEdge::ZERO, edge]
                    }
                    ControlPolarity::Negative => {
                        [edge, MatEdge::ZERO, MatEdge::ZERO, MatEdge::ZERO]
                    }
                };
                edge = self.make_mat_node(level, children);
            } else {
                edge = self.make_mat_node(level, [edge, MatEdge::ZERO, MatEdge::ZERO, edge]);
            }
        }
        let identity = self.mat_identity(n);
        // Gate construction is O(n) work per call and must stay infallible
        // for callers that assemble circuits; the governor is suspended for
        // this one addition and the next governed operation observes any
        // excess the construction produced.
        self.with_governor_suspended(|dd| dd.add_mat(identity, edge))
    }

    /// Builds a permutation unitary `|x⟩ → |f(x)⟩` over `n` qubits directly
    /// as a DD (the *DD-construct* primitive).
    ///
    /// `f` must be a bijection on `0..2^n`; this is checked.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a bijection on the domain, or `n > 28`
    /// (the check materializes the permutation).
    pub fn mat_permutation(&mut self, n: u32, f: impl Fn(u64) -> u64) -> MatEdge {
        assert!(
            (1..=28).contains(&n),
            "permutation qubit count out of range"
        );
        let size = 1u64 << n;
        let mut image = vec![u64::MAX; size as usize];
        let mut seen = vec![false; size as usize];
        for x in 0..size {
            let y = f(x);
            assert!(y < size, "permutation image out of range");
            assert!(!seen[y as usize], "permutation is not injective");
            seen[y as usize] = true;
            image[x as usize] = y;
        }
        // Entries sorted by column (x), value 1 at row image[x].
        let entries: Vec<(u64, u64, Complex)> = image
            .iter()
            .enumerate()
            .map(|(x, &y)| (y, x as u64, Complex::ONE))
            .collect();
        self.mat_from_sparse(n, &entries)
    }

    /// Builds the diagonal matrix with `default` everywhere on the diagonal
    /// except at the listed basis indices — directly, in `O(n + exceptions)`
    /// nodes.
    ///
    /// This is the *DD-construct* primitive for phase oracles: Grover's
    /// oracle is `diag(1, …, 1, −1, 1, …)` with `−1` at the marked element,
    /// which this builds as a DD of `n + O(1)` nodes per exception without
    /// touching elementary gates.
    ///
    /// # Panics
    ///
    /// Panics if an exception index is out of range or duplicated.
    pub fn mat_diagonal(
        &mut self,
        n: u32,
        default: Complex,
        exceptions: &[(u64, Complex)],
    ) -> MatEdge {
        assert!((1..=63).contains(&n), "qubit count out of range");
        let size = 1u64 << n;
        let mut sorted: Vec<(u64, ComplexId)> = exceptions
            .iter()
            .map(|&(i, v)| {
                assert!(i < size, "diagonal exception out of range");
                // The recursion splits on path (level) bits, so exception
                // indices move to internal order first.
                (self.var_order.internal_index(n, i), self.intern(v))
            })
            .collect();
        sorted.sort_unstable_by_key(|&(i, _)| i);
        for pair in sorted.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate diagonal exception");
        }
        let default = self.intern(default);
        self.mat_diagonal_rec(default, &sorted, n)
    }

    fn mat_diagonal_rec(
        &mut self,
        default: ComplexId,
        exceptions: &[(u64, ComplexId)],
        level: Level,
    ) -> MatEdge {
        if level == 0 {
            let w = exceptions.first().map_or(default, |&(_, v)| v);
            return if w.is_zero() {
                MatEdge::ZERO
            } else {
                MatEdge::terminal(w)
            };
        }
        if exceptions.is_empty() {
            // Uniform diagonal: shares one node per level via the unique
            // table, so repeated subcalls are free.
            let child = self.mat_diagonal_rec(default, &[], level - 1);
            return self.make_mat_node(level, [child, MatEdge::ZERO, MatEdge::ZERO, child]);
        }
        let bit = 1u64 << (level - 1);
        let split = exceptions.partition_point(|&(i, _)| i & bit == 0);
        let (low, high) = exceptions.split_at(split);
        let high: Vec<(u64, ComplexId)> = high.iter().map(|&(i, v)| (i & !bit, v)).collect();
        let e00 = self.mat_diagonal_rec(default, low, level - 1);
        let e11 = self.mat_diagonal_rec(default, &high, level - 1);
        self.make_mat_node(level, [e00, MatEdge::ZERO, MatEdge::ZERO, e11])
    }

    /// Builds the matrix with every entry equal to `value` — one node per
    /// level. (`2/2^n · J − I` is Grover's diffusion operator, so this is
    /// the second *DD-construct* primitive for Grover.)
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn mat_constant(&mut self, n: u32, value: Complex) -> MatEdge {
        assert!((1..=63).contains(&n), "qubit count out of range");
        let w = self.intern(value);
        if w.is_zero() {
            return MatEdge::ZERO;
        }
        let mut edge = MatEdge::terminal(ComplexId::ONE);
        for level in 1..=n {
            edge = self.make_mat_node(level, [edge; 4]);
        }
        MatEdge {
            node: edge.node,
            weight: self.complex.mul(edge.weight, w),
        }
    }

    /// Scales a matrix by a scalar.
    pub fn mat_scale(&mut self, e: MatEdge, factor: Complex) -> MatEdge {
        let f = self.intern(factor);
        if f.is_zero() || e.is_zero() {
            return MatEdge::ZERO;
        }
        MatEdge {
            node: e.node,
            weight: self.complex.mul(e.weight, f),
        }
    }

    /// Builds a matrix DD from sparse `(row, column, value)` entries; missing
    /// entries are zero. Duplicate `(row, column)` pairs are rejected.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a position is duplicated.
    pub fn mat_from_sparse(&mut self, n: u32, entries: &[(u64, u64, Complex)]) -> MatEdge {
        assert!((1..=28).contains(&n), "sparse qubit count out of range");
        let size = 1u64 << n;
        let mut sorted: Vec<(u64, u64, ComplexId)> = entries
            .iter()
            .map(|&(r, c, v)| {
                assert!(r < size && c < size, "sparse entry out of range");
                // Row/column indices are external; the recursion splits on
                // path (level) bits.
                (
                    self.var_order.internal_index(n, r),
                    self.var_order.internal_index(n, c),
                    self.intern(v),
                )
            })
            .filter(|&(_, _, v)| !v.is_zero())
            .collect();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        for pair in sorted.windows(2) {
            assert!(
                (pair[0].0, pair[0].1) != (pair[1].0, pair[1].1),
                "duplicate sparse entry"
            );
        }
        self.mat_from_sorted_sparse(&sorted, n)
    }

    fn mat_from_sorted_sparse(
        &mut self,
        entries: &[(u64, u64, ComplexId)],
        level: Level,
    ) -> MatEdge {
        if entries.is_empty() {
            return MatEdge::ZERO;
        }
        if level == 0 {
            debug_assert_eq!(entries.len(), 1);
            return MatEdge::terminal(entries[0].2);
        }
        let bit = 1u64 << (level - 1);
        // Entries are sorted by (row, col); split by row bit first (binary
        // search), then by column bit within each half.
        let row_split = entries.partition_point(|&(r, _, _)| r & bit == 0);
        let (top, bottom) = entries.split_at(row_split);
        let quadrant = |chunk: &[(u64, u64, ComplexId)]| -> [Vec<(u64, u64, ComplexId)>; 2] {
            let mut q0 = Vec::new();
            let mut q1 = Vec::new();
            for &(r, c, v) in chunk {
                if c & bit == 0 {
                    q0.push((r & !bit, c, v));
                } else {
                    q1.push((r & !bit, c & !bit, v));
                }
            }
            [q0, q1]
        };
        let [q00, q01] = quadrant(top);
        let [q10, q11] = quadrant(bottom);
        let e00 = self.mat_from_sorted_sparse(&q00, level - 1);
        let e01 = self.mat_from_sorted_sparse(&q01, level - 1);
        let e10 = self.mat_from_sorted_sparse(&q10, level - 1);
        let e11 = self.mat_from_sorted_sparse(&q11, level - 1);
        self.make_mat_node(level, [e00, e01, e10, e11])
    }

    /// Builds a matrix DD from a dense row-major matrix (tests / small
    /// instances only).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square with power-of-two dimension ≥ 2.
    pub fn mat_from_dense(&mut self, rows: &[Vec<Complex>]) -> MatEdge {
        let dim = rows.len();
        assert!(
            dim.is_power_of_two() && dim >= 2,
            "dense matrix dimension must be a power of two >= 2"
        );
        for row in rows {
            assert_eq!(row.len(), dim, "dense matrix must be square");
        }
        let n = dim.trailing_zeros();
        let entries: Vec<(u64, u64, Complex)> = rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(move |(c, &v)| (r as u64, c as u64, v))
            })
            .collect();
        self.mat_from_sparse(n, &entries)
    }

    /// Materializes the full dense matrix, indexed by the external basis
    /// convention (tests / small instances only).
    pub fn mat_to_dense(&self, e: MatEdge) -> Vec<Vec<Complex>> {
        let level = self.mat_level(e);
        let dim = 1usize << level;
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        self.fill_dense(e, Complex::ONE, 0, 0, level, &mut out);
        if !self.var_order.is_identity() && level > 0 {
            // `fill_dense` indexes by paths (internal order): scatter rows
            // and columns to external basis indices.
            let mut external = vec![vec![Complex::ZERO; dim]; dim];
            for (r, row) in out.iter().enumerate() {
                let er = self.var_order.external_index(level, r as u64) as usize;
                for (c, v) in row.iter().enumerate() {
                    let ec = self.var_order.external_index(level, c as u64) as usize;
                    external[er][ec] = *v;
                }
            }
            out = external;
        }
        out
    }

    fn fill_dense(
        &self,
        e: MatEdge,
        acc: Complex,
        row: u64,
        col: u64,
        level: Level,
        out: &mut [Vec<Complex>],
    ) {
        if e.is_zero() {
            return;
        }
        let acc = acc * self.complex_value(e.weight);
        if e.node.is_terminal() {
            out[row as usize][col as usize] = acc;
            return;
        }
        let node = *self.mat_node(e.node);
        debug_assert_eq!(node.level, level);
        let half = 1u64 << (level - 1);
        for (i, child) in node.edges.iter().enumerate() {
            let r = row + if i >= 2 { half } else { 0 };
            let c = col + if i % 2 == 1 { half } else { 0 };
            self.fill_dense(*child, acc, r, c, level - 1, out);
        }
    }

    /// One matrix entry `M[row][col]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for the edge's level.
    pub fn mat_entry(&self, e: MatEdge, row: u64, col: u64) -> Complex {
        let level = self.mat_level(e);
        assert!(
            row < (1u64 << level) && col < (1u64 << level),
            "matrix index out of range"
        );
        let row = self.var_order.internal_index(level, row);
        let col = self.var_order.internal_index(level, col);
        let mut weight = self.complex_value(e.weight);
        let mut node_id = e.node;
        let mut lvl = level;
        while !node_id.is_terminal() {
            let node = self.mat_node(node_id);
            let rb = (row >> (lvl - 1)) & 1;
            let cb = (col >> (lvl - 1)) & 1;
            let child = node.edges[(2 * rb + cb) as usize];
            if child.is_zero() {
                return Complex::ZERO;
            }
            weight *= self.complex_value(child.weight);
            node_id = child.node;
            lvl -= 1;
        }
        weight
    }

    /// Number of distinct nodes reachable from `e` (excluding the terminal).
    ///
    /// This is the paper's "size of the DD" for matrices, and the quantity
    /// the *max-size* strategy bounds with `s_max`.
    pub fn mat_node_count(&self, e: MatEdge) -> usize {
        let mut seen = HashSet::new();
        self.count_mat_rec(e.node, &mut seen);
        seen.len()
    }

    fn count_mat_rec(&self, node: NodeId, seen: &mut HashSet<NodeId>) {
        if node.is_terminal() || !seen.insert(node) {
            return;
        }
        let n = *self.mat_node(node);
        for child in n.edges {
            self.count_mat_rec(child.node, seen);
        }
    }
}

#[inline]
fn scaled(e: MatEdge, w: ComplexId) -> MatEdge {
    // Children of a freshly built gate level all point at the same
    // normalized sub-identity whose weight is ONE, so a plain weight
    // replacement (rather than a table multiplication) is exact.
    debug_assert!(e.weight.is_one());
    if w.is_zero() {
        MatEdge::ZERO
    } else {
        MatEdge {
            node: e.node,
            weight: w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::MatEdge;

    fn x_gate() -> Matrix2 {
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
    }

    fn h_gate() -> Matrix2 {
        let h = Complex::SQRT2_INV;
        [[h, h], [h, -h]]
    }

    #[test]
    fn identity_structure() {
        let mut dd = DdManager::new();
        let id = dd.mat_identity(5);
        assert_eq!(dd.mat_node_count(id), 5);
        let dense = dd.mat_to_dense(id);
        for (r, row) in dense.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                let want = if r == c { Complex::ONE } else { Complex::ZERO };
                assert!(v.approx_eq(want, 1e-12));
            }
        }
    }

    #[test]
    fn repeated_identity_requests_allocate_nothing() {
        let mut dd = DdManager::new();
        let first = dd.mat_identity(8);
        let smaller = dd.mat_identity(3); // prefix of the same cache
        let nodes = dd.live_mat_nodes();
        let lookups = dd.stats().cache.mat_unique.lookups;
        for _ in 0..16 {
            assert_eq!(dd.mat_identity(8), first);
            assert_eq!(dd.mat_identity(3), smaller);
        }
        // Cache hits must bypass the unique table entirely.
        assert_eq!(dd.live_mat_nodes(), nodes);
        assert_eq!(dd.stats().cache.mat_unique.lookups, lookups);
    }

    #[test]
    fn identity_cache_survives_garbage_collection() {
        let mut dd = DdManager::new();
        let id = dd.mat_identity(5);
        dd.collect_garbage();
        assert_eq!(dd.mat_identity(5), id);
        assert_eq!(dd.mat_node_count(id), 5);
    }

    #[test]
    fn identity_flag_tracks_structure() {
        let mut dd = DdManager::new();
        let id = dd.mat_identity(4);
        assert!(dd.is_identity(id));
        let h = dd.mat_single_qubit(4, 1, h_gate());
        assert!(!dd.is_identity(h));
        // An identity produced by arithmetic (H·H) must be recognized too.
        let hh = dd.mat_mat_mul(h, h).unwrap();
        assert!(dd.is_identity(hh));
        // A global phase i·I normalizes to the identity node with weight i:
        // identity structure, but not the multiplicative neutral element.
        let phased = dd.mat_single_qubit(
            4,
            0,
            [[Complex::I, Complex::ZERO], [Complex::ZERO, Complex::I]],
        );
        assert_eq!(phased.node, id.node);
        assert!(!dd.is_identity(phased));
    }

    #[test]
    fn single_qubit_gate_is_linear_in_qubits() {
        let mut dd = DdManager::new();
        for n in 2..8 {
            let g = dd.mat_single_qubit(n, 1, h_gate());
            assert_eq!(dd.mat_node_count(g), n as usize);
        }
    }

    #[test]
    fn x_on_one_qubit_matches_dense() {
        let mut dd = DdManager::new();
        let g = dd.mat_single_qubit(1, 0, x_gate());
        let dense = dd.mat_to_dense(g);
        assert!(dense[0][0].approx_eq(Complex::ZERO, 1e-12));
        assert!(dense[0][1].approx_eq(Complex::ONE, 1e-12));
        assert!(dense[1][0].approx_eq(Complex::ONE, 1e-12));
        assert!(dense[1][1].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn cx_matches_paper_matrix() {
        let mut dd = DdManager::new();
        // CX with control q0 (top), target q1: the 4x4 matrix from Sec. II-A.
        let g = dd.mat_controlled(2, &[Control::pos(0)], 1, x_gate());
        let dense = dd.mat_to_dense(g);
        let want = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
        ];
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    dense[r][c].approx_eq(Complex::real(want[r][c]), 1e-12),
                    "entry ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn control_below_target() {
        let mut dd = DdManager::new();
        // CX with control q1 (bottom), target q0 (top).
        let g = dd.mat_controlled(2, &[Control::pos(1)], 0, x_gate());
        let dense = dd.mat_to_dense(g);
        // Basis order |q0 q1⟩: 00,01,10,11. Control q1=1 flips q0:
        // |01⟩→|11⟩, |11⟩→|01⟩; |00⟩,|10⟩ fixed.
        let want = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
        ];
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    dense[r][c].approx_eq(Complex::real(want[r][c]), 1e-12),
                    "entry ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn negative_control() {
        let mut dd = DdManager::new();
        let g = dd.mat_controlled(2, &[Control::neg(0)], 1, x_gate());
        let dense = dd.mat_to_dense(g);
        // Fires when q0=0: |00⟩↔|01⟩.
        assert!(dense[0][1].approx_eq(Complex::ONE, 1e-12));
        assert!(dense[1][0].approx_eq(Complex::ONE, 1e-12));
        assert!(dense[2][2].approx_eq(Complex::ONE, 1e-12));
        assert!(dense[3][3].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn toffoli_via_two_controls() {
        let mut dd = DdManager::new();
        let g = dd.mat_controlled(3, &[Control::pos(0), Control::pos(1)], 2, x_gate());
        let dense = dd.mat_to_dense(g);
        for x in 0u64..8 {
            let y = if x >> 1 == 0b11 { x ^ 1 } else { x };
            for r in 0u64..8 {
                let want = if r == y { Complex::ONE } else { Complex::ZERO };
                assert!(
                    dense[r as usize][x as usize].approx_eq(want, 1e-12),
                    "column {x}, row {r}"
                );
            }
        }
    }

    #[test]
    fn permutation_construct_matches_function() {
        let mut dd = DdManager::new();
        // x -> 3x mod 8 is a bijection on 0..8 (gcd(3,8)=1).
        let g = dd.mat_permutation(3, |x| (3 * x) % 8);
        for x in 0u64..8 {
            for r in 0u64..8 {
                let want = if r == (3 * x) % 8 {
                    Complex::ONE
                } else {
                    Complex::ZERO
                };
                assert!(dd.mat_entry(g, r, x).approx_eq(want, 1e-12));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn non_bijective_permutation_rejected() {
        let mut dd = DdManager::new();
        let _ = dd.mat_permutation(2, |_| 0);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let mut dd = DdManager::new();
        let rows = vec![
            vec![Complex::real(1.0), Complex::ZERO, Complex::I, Complex::ZERO],
            vec![
                Complex::ZERO,
                Complex::real(-1.0),
                Complex::ZERO,
                Complex::ZERO,
            ],
            vec![
                Complex::ZERO,
                Complex::ZERO,
                Complex::real(0.5),
                Complex::ZERO,
            ],
            vec![
                Complex::new(0.5, 0.5),
                Complex::ZERO,
                Complex::ZERO,
                Complex::real(2.0),
            ],
        ];
        let e = dd.mat_from_dense(&rows);
        let back = dd.mat_to_dense(e);
        for r in 0..4 {
            for c in 0..4 {
                assert!(back[r][c].approx_eq(rows[r][c], 1e-10), "({r},{c})");
            }
        }
    }

    #[test]
    fn diagonal_with_single_exception() {
        let mut dd = DdManager::new();
        // Grover oracle shape: -1 at index 5, +1 elsewhere.
        let oracle = dd.mat_diagonal(3, Complex::ONE, &[(5, Complex::real(-1.0))]);
        for i in 0u64..8 {
            for j in 0u64..8 {
                let want = if i != j {
                    Complex::ZERO
                } else if i == 5 {
                    Complex::real(-1.0)
                } else {
                    Complex::ONE
                };
                assert!(
                    dd.mat_entry(oracle, i, j).approx_eq(want, 1e-12),
                    "({i},{j})"
                );
            }
        }
        // Direct construction stays near-linear in qubits.
        assert!(dd.mat_node_count(oracle) <= 2 * 3);
    }

    #[test]
    fn diagonal_squares_to_identity_when_signs() {
        let mut dd = DdManager::new();
        let oracle = dd.mat_diagonal(4, Complex::ONE, &[(3, Complex::real(-1.0))]);
        let squared = dd.mat_mat_mul(oracle, oracle).unwrap();
        let id = dd.mat_identity(4);
        assert_eq!(squared, id);
    }

    #[test]
    #[should_panic(expected = "duplicate diagonal exception")]
    fn diagonal_rejects_duplicates() {
        let mut dd = DdManager::new();
        let _ = dd.mat_diagonal(2, Complex::ONE, &[(1, Complex::I), (1, Complex::ONE)]);
    }

    #[test]
    fn constant_matrix_is_one_node_per_level() {
        let mut dd = DdManager::new();
        let j = dd.mat_constant(4, Complex::real(0.25));
        assert_eq!(dd.mat_node_count(j), 4);
        for i in 0u64..16 {
            for k in 0u64..16 {
                assert!(dd.mat_entry(j, i, k).approx_eq(Complex::real(0.25), 1e-12));
            }
        }
    }

    #[test]
    fn diffusion_from_constant_and_identity() {
        // D = 2/2^n · J − I must be unitary and equal H⊗ⁿ·(2|0⟩⟨0|−I)·H⊗ⁿ.
        let mut dd = DdManager::new();
        let n = 3u32;
        let j = dd.mat_constant(n, Complex::real(2.0 / 8.0));
        let neg_id = {
            let id = dd.mat_identity(n);
            dd.mat_scale(id, Complex::real(-1.0))
        };
        let diffusion = dd.add_mat(j, neg_id).unwrap();
        let ddag = dd.mat_conj_transpose(diffusion).unwrap();
        let product = dd.mat_mat_mul(ddag, diffusion).unwrap();
        let id = dd.mat_identity(n);
        assert_eq!(product, id, "diffusion must be unitary");
    }

    #[test]
    fn scale_distributes_over_product() {
        let mut dd = DdManager::new();
        let h = dd.mat_single_qubit(2, 0, h_gate());
        let scaled = dd.mat_scale(h, Complex::I);
        let entry = dd.mat_entry(scaled, 0, 0);
        assert!(entry.approx_eq(Complex::I * Complex::SQRT2_INV, 1e-12));
    }

    #[test]
    fn zero_matrix_from_empty_sparse() {
        let mut dd = DdManager::new();
        let e = dd.mat_from_sparse(3, &[]);
        assert_eq!(e, MatEdge::ZERO);
        assert_eq!(dd.mat_node_count(e), 0);
    }
}

//! The [`Par`] execution policy and the fork-join multiplication kernels.
//!
//! # Parallelism model: isolated worker shards, deterministic merge
//!
//! The paper's combining strategies widen the top of the MxV/MxM recursion
//! into independent quadrant products — exactly the shape a multi-core
//! engine can exploit. But the manager's canonical state is deeply
//! history-dependent: the arenas are reallocating `Vec`s, and the
//! tolerance-bucketed complex table makes interning order-sensitive (the
//! first value in a bucket becomes its representative). Sharing those
//! tables across threads under fine-grained locks would either race on
//! arena reallocation or make node ids scheduling-dependent, destroying
//! the run-to-run determinism the rest of the workspace is built on.
//!
//! The sharding strategy here keeps every mutable table **thread-private**
//! instead:
//!
//! 1. a *split planner* mirrors the top levels of the sequential recursion
//!    (including its structural-zero elisions and identity skips) down to a
//!    size cutoff, producing a task list of independent sub-products plus a
//!    join plan;
//! 2. each task's operand sub-DDs are **exported** to a portable form
//!    (children-before-parents node list with exact `f64` weights, the
//!    snapshot format's in-memory sibling);
//! 3. pool workers import the operands into **private managers** — their
//!    own arenas, unique tables, caches, and complex table — and run the
//!    ordinary sequential kernels;
//! 4. the coordinator imports the results back into the main manager **in
//!    fixed task order** and resolves the join plan with the ordinary
//!    `add`/`make_node` path.
//!
//! Hash-consing makes the merge canonical: importing a worker's result
//! rebuilds it through `make_vec_node`/`make_mat_node`, so shared
//! structure dedupes exactly as if the main manager had computed it.
//! Because the merge order is fixed, threaded runs are deterministic
//! run-to-run; they may differ from the sequential result only within the
//! weight-unification tolerance (a worker's fresh complex table can pick
//! different bucket representatives). A pool of parallelism 1 — and
//! [`Par::Seq`], the default — never enters this module's code paths at
//! all, so single-threaded results stay bitwise identical to the
//! pre-parallel engine.
//!
//! # Governance under parallelism
//!
//! Workers inherit the coordinator's deadline and observe its cancel token
//! through a [`CancelToken::child`], so a user cancellation reaches every
//! worker while a *sibling* cancellation (raised internally when one
//! worker errors) never latches the user's token. A `max_live_nodes`
//! budget becomes a shared atomic counter: each worker flushes its private
//! arena count into it at the amortized charge interval and trips on the
//! combined total, so the global budget is enforced (with the same
//! one-interval overshoot bound as sequential runs) and surfaces as the
//! same typed [`DdError`]s with the breach recorded on the main manager.

use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ddsim_complex::{Complex, ComplexId};

use crate::edge::{Level, MatEdge, NodeId, VecEdge};
use crate::error::{BudgetBreach, CancelToken, DdError};
use crate::hash::FxHashMap;
use crate::manager::{DdConfig, DdManager, DdStats};
use crate::pool::ThreadPool;

/// Execution policy for the DD kernels, in the style of faer-rs's `Par`
/// parameter: a capability passed down to the engine rather than threads
/// spawned at use sites. [`Par::Seq`] (the default) runs today's exact
/// sequential code; [`Par::Threaded`] lets the top-level MxV/MxM entry
/// points fork quadrant products across the pool.
#[derive(Clone, Debug, Default)]
pub enum Par {
    /// Strictly sequential execution (bitwise identical to the
    /// pre-parallel engine).
    #[default]
    Seq,
    /// Fork-join execution on the given pool. A pool of parallelism 1
    /// behaves exactly like [`Par::Seq`].
    Threaded(Arc<ThreadPool>),
}

/// Minimum operand level at which the entry points consider forking: below
/// this the whole product is cheaper than exporting its operands.
pub(crate) const PAR_MIN_LEVEL: Level = 6;

/// The split planner stops descending at this level and emits the
/// remaining subtree as one task.
const SPLIT_FLOOR_LEVEL: Level = 3;

/// Portable-edge marker for the terminal node.
const TERMINAL: u32 = u32::MAX;

/// Table-size caps for worker managers. A worker lives for one task and
/// sees a subproblem at least SPLIT_FLOOR_LEVEL levels smaller than the
/// coordinator's operand, so its tables are clamped well below the
/// coordinator's (allocating a fresh 2^16-slot cache set per task would
/// dominate small forks). Capacity never changes the diagrams produced.
const WORKER_CT_BITS: u32 = 12;
const WORKER_UT_BITS: u32 = 10;

/// How many planner levels to expand for a pool of the given parallelism.
/// Each level multiplies the task count by up to 4 (MxV) / 8 (MxM), so two
/// levels saturate any pool this crate targets.
fn split_depth(parallelism: usize) -> u32 {
    if parallelism <= 2 {
        1
    } else {
        2
    }
}

/// A manager-independent edge: an index into a portable node list (or
/// [`TERMINAL`]) plus the exact complex weight value.
#[derive(Clone, Copy, Debug)]
struct PortableEdge {
    node: u32,
    weight: Complex,
}

/// A vector sub-DD in transferable form (children before parents).
#[derive(Clone, Debug)]
pub(crate) struct PortableVec {
    nodes: Vec<(Level, [PortableEdge; 2])>,
    root: PortableEdge,
}

/// A matrix sub-DD in transferable form (children before parents).
#[derive(Clone, Debug)]
pub(crate) struct PortableMat {
    nodes: Vec<(Level, [PortableEdge; 4])>,
    root: PortableEdge,
}

/// A worker's view of the coordinator's `max_live_nodes` budget: the
/// shared counter holds the fleet-wide live-node total, `flushed` the
/// portion this manager has already contributed. Each amortized charge
/// pushes the delta and trips on the combined total.
pub(crate) struct SharedLiveBudget {
    pub(crate) counter: Arc<AtomicUsize>,
    pub(crate) limit: usize,
    pub(crate) flushed: usize,
}

// ----------------------------------------------------------------------
// Split plans
// ----------------------------------------------------------------------

/// One operand of a quadrant sum in a matrix-vector split plan.
enum VSum {
    One(VPlan),
    Two(VPlan, VPlan),
}

/// A node of the matrix-vector split plan. `Join` scales the rebuilt node
/// by `outer` — the product of the operand edge weights — exactly as the
/// sequential kernel factors weights out of its cache keys.
enum VPlan {
    Done(VecEdge),
    Task(usize),
    Join {
        level: Level,
        outer: ComplexId,
        lo: Box<VSum>,
        hi: Box<VSum>,
    },
}

enum MSum {
    One(MPlan),
    Two(MPlan, MPlan),
}

enum MPlan {
    Done(MatEdge),
    Task(usize),
    Join {
        level: Level,
        outer: ComplexId,
        quads: Vec<MSum>,
    },
}

// ----------------------------------------------------------------------
// Fork-join scaffolding
// ----------------------------------------------------------------------

/// Everything a worker manager inherits from the coordinator.
struct ForkCtx {
    config: DdConfig,
    deadline: Option<Instant>,
    token: Option<CancelToken>,
    shared_live: Option<(Arc<AtomicUsize>, usize)>,
}

/// One worker's outcome: its (portable) result, its statistics for
/// merging, and its breach details if a budget tripped.
struct WorkerOut<T> {
    result: Result<T, DdError>,
    stats: DdStats,
    breach: Option<BudgetBreach>,
}

/// Runs one job per worker manager on the pool and collects every outcome
/// in task order. A failing worker cancels its siblings through the
/// context's (internal, child) token; panics propagate after the batch
/// drains (see `pool.rs`).
fn run_fork_join<J: Sync, T: Send>(
    pool: &ThreadPool,
    ctx: &ForkCtx,
    jobs: &[J],
    run: impl Fn(&mut DdManager, &J) -> Result<T, DdError> + Sync,
) -> Vec<WorkerOut<T>> {
    let slots: Vec<Mutex<Option<WorkerOut<T>>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    {
        let run = &run;
        let slots = &slots;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..jobs.len())
            .map(|i| {
                Box::new(move || {
                    let mut worker = DdManager::with_config(ctx.config);
                    if ctx.deadline.is_some() {
                        worker.set_deadline(ctx.deadline);
                    }
                    if let Some(token) = &ctx.token {
                        worker.set_cancel_token(Some(token.clone()));
                    }
                    if let Some((counter, limit)) = &ctx.shared_live {
                        worker.install_shared_live(Arc::clone(counter), *limit);
                    }
                    let result = run(&mut worker, &jobs[i]);
                    if result.is_err() {
                        // Unwind the siblings; latching the child token
                        // never cancels the user's token.
                        if let Some(token) = &ctx.token {
                            token.cancel();
                        }
                    }
                    *slots[i].lock().expect("fork-join slot poisoned") = Some(WorkerOut {
                        result,
                        stats: worker.stats(),
                        breach: worker.last_breach(),
                    });
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fork-join slot poisoned")
                .expect("fork-join task did not run")
        })
        .collect()
}

impl DdManager {
    /// The pool to fork on, if the policy, pool width, and operand size all
    /// justify it.
    pub(crate) fn par_pool(&self, level: Level) -> Option<Arc<ThreadPool>> {
        match self.par() {
            Par::Threaded(pool) if pool.parallelism() > 1 && level >= PAR_MIN_LEVEL => {
                Some(Arc::clone(pool))
            }
            _ => None,
        }
    }

    /// Builds the governance context workers inherit. Ungoverned runs fork
    /// fully ungoverned workers (zero charge overhead); governed runs hand
    /// every worker the deadline, a child of the user's cancel token, and
    /// a shared view of the live-node budget seeded with the coordinator's
    /// current consumption.
    fn fork_ctx(&self) -> ForkCtx {
        let governed = self.is_governed();
        ForkCtx {
            // Worker-local budgets are meaningless (their arenas start
            // empty); the global live-node budget is enforced through the
            // shared counter instead, and the coordinator's table bytes
            // are still checked on its own next charge.
            config: DdConfig {
                max_live_nodes: None,
                max_table_bytes: None,
                // Workers solve subproblems SPLIT_FLOOR_LEVEL+ levels below
                // the coordinator's operand and live for one task, so
                // coordinator-sized tables are pure allocation overhead per
                // task. Capacity only affects speed, never the diagrams.
                compute_table_bits: self.config.compute_table_bits.min(WORKER_CT_BITS),
                unique_table_bits: self.config.unique_table_bits.min(WORKER_UT_BITS),
                ..self.config
            },
            deadline: if governed { self.deadline() } else { None },
            token: if governed {
                Some(self.cancel_token().map(|t| t.child()).unwrap_or_default())
            } else {
                None
            },
            shared_live: if governed {
                self.config.max_live_nodes.map(|limit| {
                    let live = self.live_vec_nodes() + self.live_mat_nodes();
                    (Arc::new(AtomicUsize::new(live)), limit)
                })
            } else {
                None
            },
        }
    }

    /// Merges every worker's statistics, resolves the failure to report
    /// (first budget/deadline error in task order outranks a sibling
    /// cancellation), and returns the successful results in task order.
    fn harvest<T>(&mut self, outs: Vec<WorkerOut<T>>) -> Result<Vec<T>, DdError> {
        let mut failure: Option<(DdError, Option<BudgetBreach>)> = None;
        let mut results = Vec::with_capacity(outs.len());
        for out in outs {
            self.absorb_worker(&out.stats);
            match out.result {
                Ok(value) => results.push(value),
                Err(e) => {
                    let replace = match &failure {
                        None => true,
                        // A sibling's Cancelled is collateral damage; the
                        // root cause (budget/deadline) outranks it.
                        Some((DdError::Cancelled, _)) => e != DdError::Cancelled,
                        Some(_) => false,
                    };
                    if replace {
                        failure = Some((e, out.breach));
                    }
                }
            }
        }
        if let Some((e, breach)) = failure {
            if let Some(b) = breach {
                self.record_breach(b);
            }
            return Err(e);
        }
        Ok(results)
    }

    // ------------------------------------------------------------------
    // Matrix-vector fork-join
    // ------------------------------------------------------------------

    /// Fork-join `M × v`: plan, export, run on the pool, merge. Falls back
    /// to the sequential kernel when the planner finds fewer than two
    /// tasks (nothing to parallelize).
    pub(crate) fn mat_vec_mul_par(
        &mut self,
        m: MatEdge,
        v: VecEdge,
        pool: &Arc<ThreadPool>,
    ) -> Result<VecEdge, DdError> {
        let mut tasks: Vec<(MatEdge, VecEdge)> = Vec::new();
        let plan = self.split_mat_vec(m, v, split_depth(pool.parallelism()), &mut tasks);
        if tasks.len() < 2 {
            return self.mat_vec_mul_seq(m, v);
        }
        let jobs: Vec<(PortableMat, PortableVec)> = tasks
            .iter()
            .map(|&(tm, tv)| (self.export_mat(tm), self.export_vec(tv)))
            .collect();
        let ctx = self.fork_ctx();
        let outs = run_fork_join(pool, &ctx, &jobs, |worker, (jm, jv)| {
            let wm = worker.import_mat(jm);
            let wv = worker.import_vec(jv);
            let r = worker.mat_vec_mul(wm, wv)?;
            Ok(worker.export_vec(r))
        });
        let portables = self.harvest(outs)?;
        // Fixed-order import keeps threaded runs deterministic: node ids
        // and bucket representatives depend only on the task order, never
        // on worker scheduling.
        let results: Vec<VecEdge> = portables.iter().map(|p| self.import_vec(p)).collect();
        self.resolve_vplan(plan, &results)
    }

    /// Mirrors `mat_vec_rec`'s structure — the same structural-zero
    /// elisions and identity skips — but emits tasks instead of recursing
    /// past the split depth.
    fn split_mat_vec(
        &mut self,
        m: MatEdge,
        v: VecEdge,
        depth: u32,
        tasks: &mut Vec<(MatEdge, VecEdge)>,
    ) -> VPlan {
        if m.is_zero() || v.is_zero() {
            return VPlan::Done(VecEdge::ZERO);
        }
        let outer = self.complex.mul(m.weight, v.weight);
        if m.node.is_terminal() && v.node.is_terminal() {
            return VPlan::Done(VecEdge::terminal(outer));
        }
        if self.config.identity_skip && self.is_identity_node(m.node) {
            self.stats.identity_skips += 1;
            return VPlan::Done(VecEdge {
                node: v.node,
                weight: outer,
            });
        }
        if depth == 0 || self.mat_level(m) <= SPLIT_FLOOR_LEVEL {
            tasks.push((m, v));
            return VPlan::Task(tasks.len() - 1);
        }
        let mn = *self.mat_node(m.node);
        let vn = *self.vec_node(v.node);
        let lo = if mn.edges[1].is_zero() {
            VSum::One(self.split_mat_vec(mn.edges[0], vn.edges[0], depth - 1, tasks))
        } else if mn.edges[0].is_zero() {
            VSum::One(self.split_mat_vec(mn.edges[1], vn.edges[1], depth - 1, tasks))
        } else {
            VSum::Two(
                self.split_mat_vec(mn.edges[0], vn.edges[0], depth - 1, tasks),
                self.split_mat_vec(mn.edges[1], vn.edges[1], depth - 1, tasks),
            )
        };
        let hi = if mn.edges[3].is_zero() {
            VSum::One(self.split_mat_vec(mn.edges[2], vn.edges[0], depth - 1, tasks))
        } else if mn.edges[2].is_zero() {
            VSum::One(self.split_mat_vec(mn.edges[3], vn.edges[1], depth - 1, tasks))
        } else {
            VSum::Two(
                self.split_mat_vec(mn.edges[2], vn.edges[0], depth - 1, tasks),
                self.split_mat_vec(mn.edges[3], vn.edges[1], depth - 1, tasks),
            )
        };
        VPlan::Join {
            level: mn.level,
            outer,
            lo: Box::new(lo),
            hi: Box::new(hi),
        }
    }

    fn resolve_vsum(&mut self, sum: VSum, results: &[VecEdge]) -> Result<VecEdge, DdError> {
        match sum {
            VSum::One(p) => self.resolve_vplan(p, results),
            VSum::Two(a, b) => {
                let a = self.resolve_vplan(a, results)?;
                let b = self.resolve_vplan(b, results)?;
                self.add_vec(a, b)
            }
        }
    }

    fn resolve_vplan(&mut self, plan: VPlan, results: &[VecEdge]) -> Result<VecEdge, DdError> {
        match plan {
            VPlan::Done(e) => Ok(e),
            VPlan::Task(i) => Ok(results[i]),
            VPlan::Join {
                level,
                outer,
                lo,
                hi,
            } => {
                let lo = self.resolve_vsum(*lo, results)?;
                let hi = self.resolve_vsum(*hi, results)?;
                let e = self.make_vec_node(level, [lo, hi]);
                Ok(VecEdge {
                    node: e.node,
                    weight: self.complex.mul(e.weight, outer),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Matrix-matrix fork-join
    // ------------------------------------------------------------------

    /// Fork-join `A × B`, the matrix sibling of
    /// [`mat_vec_mul_par`](Self::mat_vec_mul_par).
    pub(crate) fn mat_mat_mul_par(
        &mut self,
        a: MatEdge,
        b: MatEdge,
        pool: &Arc<ThreadPool>,
    ) -> Result<MatEdge, DdError> {
        let mut tasks: Vec<(MatEdge, MatEdge)> = Vec::new();
        let plan = self.split_mat_mat(a, b, split_depth(pool.parallelism()), &mut tasks);
        if tasks.len() < 2 {
            return self.mat_mat_mul_seq(a, b);
        }
        let jobs: Vec<(PortableMat, PortableMat)> = tasks
            .iter()
            .map(|&(ta, tb)| (self.export_mat(ta), self.export_mat(tb)))
            .collect();
        let ctx = self.fork_ctx();
        let outs = run_fork_join(pool, &ctx, &jobs, |worker, (ja, jb)| {
            let wa = worker.import_mat(ja);
            let wb = worker.import_mat(jb);
            let r = worker.mat_mat_mul(wa, wb)?;
            Ok(worker.export_mat(r))
        });
        let portables = self.harvest(outs)?;
        let results: Vec<MatEdge> = portables.iter().map(|p| self.import_mat(p)).collect();
        self.resolve_mplan(plan, &results)
    }

    /// Mirrors `mat_mat_rec` (quadrant products with structural-zero
    /// elision, identity skips on either operand) down to the split depth.
    fn split_mat_mat(
        &mut self,
        a: MatEdge,
        b: MatEdge,
        depth: u32,
        tasks: &mut Vec<(MatEdge, MatEdge)>,
    ) -> MPlan {
        if a.is_zero() || b.is_zero() {
            return MPlan::Done(MatEdge::ZERO);
        }
        let outer = self.complex.mul(a.weight, b.weight);
        if a.node.is_terminal() && b.node.is_terminal() {
            return MPlan::Done(MatEdge::terminal(outer));
        }
        if self.config.identity_skip {
            if self.is_identity_node(a.node) {
                self.stats.identity_skips += 1;
                return MPlan::Done(MatEdge {
                    node: b.node,
                    weight: outer,
                });
            }
            if self.is_identity_node(b.node) {
                self.stats.identity_skips += 1;
                return MPlan::Done(MatEdge {
                    node: a.node,
                    weight: outer,
                });
            }
        }
        if depth == 0 || self.mat_level(a) <= SPLIT_FLOOR_LEVEL {
            tasks.push((a, b));
            return MPlan::Task(tasks.len() - 1);
        }
        let an = *self.mat_node(a.node);
        let bn = *self.mat_node(b.node);
        let mut quads = Vec::with_capacity(4);
        for r in 0..2usize {
            for c in 0..2usize {
                let quad = if an.edges[2 * r + 1].is_zero() || bn.edges[2 + c].is_zero() {
                    MSum::One(self.split_mat_mat(an.edges[2 * r], bn.edges[c], depth - 1, tasks))
                } else if an.edges[2 * r].is_zero() || bn.edges[c].is_zero() {
                    MSum::One(self.split_mat_mat(
                        an.edges[2 * r + 1],
                        bn.edges[2 + c],
                        depth - 1,
                        tasks,
                    ))
                } else {
                    MSum::Two(
                        self.split_mat_mat(an.edges[2 * r], bn.edges[c], depth - 1, tasks),
                        self.split_mat_mat(an.edges[2 * r + 1], bn.edges[2 + c], depth - 1, tasks),
                    )
                };
                quads.push(quad);
            }
        }
        MPlan::Join {
            level: an.level,
            outer,
            quads,
        }
    }

    fn resolve_msum(&mut self, sum: MSum, results: &[MatEdge]) -> Result<MatEdge, DdError> {
        match sum {
            MSum::One(p) => self.resolve_mplan(p, results),
            MSum::Two(a, b) => {
                let a = self.resolve_mplan(a, results)?;
                let b = self.resolve_mplan(b, results)?;
                self.add_mat(a, b)
            }
        }
    }

    fn resolve_mplan(&mut self, plan: MPlan, results: &[MatEdge]) -> Result<MatEdge, DdError> {
        match plan {
            MPlan::Done(e) => Ok(e),
            MPlan::Task(i) => Ok(results[i]),
            MPlan::Join {
                level,
                outer,
                quads,
            } => {
                let mut children = [MatEdge::ZERO; 4];
                for (child, quad) in children.iter_mut().zip(quads) {
                    *child = self.resolve_msum(quad, results)?;
                }
                let e = self.make_mat_node(level, children);
                Ok(MatEdge {
                    node: e.node,
                    weight: self.complex.mul(e.weight, outer),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Sub-DD transfer
    // ------------------------------------------------------------------

    /// Exports the sub-DD under `root` as a portable node list (children
    /// before parents, exact weight values). Iterative post-order walk, so
    /// wide-register diagrams cannot overflow the stack.
    pub(crate) fn export_vec(&self, root: VecEdge) -> PortableVec {
        let mut nodes: Vec<(Level, [PortableEdge; 2])> = Vec::new();
        let mut index_of: FxHashMap<NodeId, u32> = FxHashMap::default();
        if !root.is_zero() && !root.node.is_terminal() {
            let mut stack: Vec<(NodeId, bool)> = vec![(root.node, false)];
            while let Some((id, expanded)) = stack.pop() {
                if index_of.contains_key(&id) {
                    continue;
                }
                if expanded {
                    let n = self.vec_node(id);
                    let children = [
                        self.portable_edge(n.edges[0].node, n.edges[0].weight, &index_of),
                        self.portable_edge(n.edges[1].node, n.edges[1].weight, &index_of),
                    ];
                    index_of.insert(id, nodes.len() as u32);
                    nodes.push((n.level, children));
                } else {
                    stack.push((id, true));
                    for child in self.vec_node(id).edges {
                        if !child.node.is_terminal() && !index_of.contains_key(&child.node) {
                            stack.push((child.node, false));
                        }
                    }
                }
            }
        }
        let root = self.portable_edge(root.node, root.weight, &index_of);
        PortableVec { nodes, root }
    }

    /// Matrix sibling of [`export_vec`](Self::export_vec).
    pub(crate) fn export_mat(&self, root: MatEdge) -> PortableMat {
        let mut nodes: Vec<(Level, [PortableEdge; 4])> = Vec::new();
        let mut index_of: FxHashMap<NodeId, u32> = FxHashMap::default();
        if !root.is_zero() && !root.node.is_terminal() {
            let mut stack: Vec<(NodeId, bool)> = vec![(root.node, false)];
            while let Some((id, expanded)) = stack.pop() {
                if index_of.contains_key(&id) {
                    continue;
                }
                if expanded {
                    let n = self.mat_node(id);
                    let children = [
                        self.portable_edge(n.edges[0].node, n.edges[0].weight, &index_of),
                        self.portable_edge(n.edges[1].node, n.edges[1].weight, &index_of),
                        self.portable_edge(n.edges[2].node, n.edges[2].weight, &index_of),
                        self.portable_edge(n.edges[3].node, n.edges[3].weight, &index_of),
                    ];
                    index_of.insert(id, nodes.len() as u32);
                    nodes.push((n.level, children));
                } else {
                    stack.push((id, true));
                    for child in self.mat_node(id).edges {
                        if !child.node.is_terminal() && !index_of.contains_key(&child.node) {
                            stack.push((child.node, false));
                        }
                    }
                }
            }
        }
        let root = self.portable_edge(root.node, root.weight, &index_of);
        PortableMat { nodes, root }
    }

    fn portable_edge(
        &self,
        node: NodeId,
        weight: ComplexId,
        index_of: &FxHashMap<NodeId, u32>,
    ) -> PortableEdge {
        PortableEdge {
            node: if node.is_terminal() {
                TERMINAL
            } else {
                index_of[&node]
            },
            weight: self.complex.value(weight),
        }
    }

    /// Rebuilds an exported vector sub-DD in this manager, children first
    /// through the normalizing constructor, so shared structure hash-conses
    /// against whatever this manager already holds.
    pub(crate) fn import_vec(&mut self, p: &PortableVec) -> VecEdge {
        let mut built: Vec<VecEdge> = Vec::with_capacity(p.nodes.len());
        for (level, children) in &p.nodes {
            let decoded = [
                self.decode_vec_edge(children[0], &built),
                self.decode_vec_edge(children[1], &built),
            ];
            built.push(self.make_vec_node(*level, decoded));
        }
        self.decode_vec_edge(p.root, &built)
    }

    /// Matrix sibling of [`import_vec`](Self::import_vec).
    pub(crate) fn import_mat(&mut self, p: &PortableMat) -> MatEdge {
        let mut built: Vec<MatEdge> = Vec::with_capacity(p.nodes.len());
        for (level, children) in &p.nodes {
            let decoded = [
                self.decode_mat_edge(children[0], &built),
                self.decode_mat_edge(children[1], &built),
                self.decode_mat_edge(children[2], &built),
                self.decode_mat_edge(children[3], &built),
            ];
            built.push(self.make_mat_node(*level, decoded));
        }
        self.decode_mat_edge(p.root, &built)
    }

    /// Exported nodes are canonical, so re-normalization is usually the
    /// identity and `built` edges carry weight ONE; multiplying the built
    /// edge's weight back in keeps the import exact even if this manager's
    /// historied complex table snaps a weight to a different bucket
    /// representative.
    fn decode_vec_edge(&mut self, e: PortableEdge, built: &[VecEdge]) -> VecEdge {
        let weight = self.intern(e.weight);
        if e.node == TERMINAL {
            VecEdge {
                node: NodeId::TERMINAL,
                weight,
            }
        } else {
            let base = built[e.node as usize];
            VecEdge {
                node: base.node,
                weight: self.complex.mul(weight, base.weight),
            }
        }
    }

    fn decode_mat_edge(&mut self, e: PortableEdge, built: &[MatEdge]) -> MatEdge {
        let weight = self.intern(e.weight);
        if e.node == TERMINAL {
            MatEdge {
                node: NodeId::TERMINAL,
                weight,
            }
        } else {
            let base = built[e.node as usize];
            MatEdge {
                node: base.node,
                weight: self.complex.mul(weight, base.weight),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Resource;
    use crate::matrix::{Control, Matrix2};
    use ddsim_complex::Complex;

    fn h_gate() -> Matrix2 {
        let h = Complex::SQRT2_INV;
        [[h, h], [h, -h]]
    }

    fn x_gate() -> Matrix2 {
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
    }

    /// A dense, structured n-qubit state: H everywhere, then a phase
    /// ladder and a CX chain for asymmetry.
    fn dense_state(dd: &mut DdManager, n: u32) -> VecEdge {
        let mut v = dd.vec_basis(n, 0b1);
        for q in 0..n {
            v = dd.apply_single_qubit(q, h_gate(), v).unwrap();
        }
        for q in 1..n {
            let phase = Complex::from_polar(1.0, 0.31 * q as f64);
            let p: Matrix2 = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, phase]];
            v = dd
                .apply_controlled(&[Control::pos(q - 1)], q, p, v)
                .unwrap();
        }
        v
    }

    fn pooled(parallelism: usize) -> Par {
        Par::Threaded(Arc::new(ThreadPool::new(parallelism)))
    }

    #[test]
    fn export_import_round_trip_is_bit_exact() {
        let mut dd = DdManager::new();
        let n = 7;
        let state = dense_state(&mut dd, n);
        let before = dd.vec_to_amplitudes(state);
        let portable = dd.export_vec(state);

        let mut fresh = DdManager::new();
        let restored = fresh.import_vec(&portable);
        let after = fresh.vec_to_amplitudes(restored);
        assert_eq!(before.len(), after.len());
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "amplitude {i} (re)");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "amplitude {i} (im)");
        }

        // Re-import into the ORIGINAL manager hash-conses onto the
        // existing diagram: same node, same weight.
        let again = dd.import_vec(&portable);
        assert_eq!(again, state);
    }

    #[test]
    fn export_import_handles_zero_and_terminal_roots() {
        let mut dd = DdManager::new();
        let z = dd.export_vec(VecEdge::ZERO);
        assert!(dd.import_vec(&z).is_zero());
        let m = dd.export_mat(MatEdge::ZERO);
        assert!(dd.import_mat(&m).is_zero());
    }

    #[test]
    fn mat_export_round_trips_through_a_fresh_manager() {
        let mut dd = DdManager::new();
        let n = 6;
        let h = dd.mat_single_qubit(n, 2, h_gate());
        let cx = dd.mat_controlled(n, &[Control::pos(1)], 4, x_gate());
        let u = dd.mat_mat_mul(cx, h).unwrap();
        let portable = dd.export_mat(u);
        let mut fresh = DdManager::new();
        let restored = fresh.import_mat(&portable);
        let a = dd.mat_to_dense(u);
        let b = fresh.mat_to_dense(restored);
        for (r, (ra, rb)) in a.iter().zip(&b).enumerate() {
            for (c, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert!(x.approx_eq(*y, 1e-12), "({r},{c}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn threaded_mat_vec_matches_sequential() {
        let n = 8;
        let mut seq = DdManager::new();
        let mut par = DdManager::new();
        par.set_par(pooled(4));

        let run = |dd: &mut DdManager| {
            let mut v = dense_state(dd, n);
            for q in 0..n {
                let g = dd.mat_single_qubit(n, q, h_gate());
                v = dd.mat_vec_mul(g, v).unwrap();
            }
            let cx = dd.mat_controlled(n, &[Control::pos(0)], n - 1, x_gate());
            dd.mat_vec_mul(cx, v).unwrap()
        };
        let vs = run(&mut seq);
        let vp = run(&mut par);
        let a = seq.vec_to_amplitudes(vs);
        let b = par.vec_to_amplitudes(vp);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(x.approx_eq(*y, 1e-9), "amplitude {i}: {x} vs {y}");
        }
        // Threaded runs must be deterministic run-to-run: repeat and
        // require the exact same edge.
        let vp2 = run(&mut par);
        let b2 = par.vec_to_amplitudes(vp2);
        for (i, (x, y)) in b.iter().zip(&b2).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "rerun amplitude {i} (re)");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "rerun amplitude {i} (im)");
        }
    }

    #[test]
    fn threaded_mat_mat_matches_sequential() {
        let n = 8;
        let mut seq = DdManager::new();
        let mut par = DdManager::new();
        par.set_par(pooled(4));

        let run = |dd: &mut DdManager| {
            let h = dd.mat_single_qubit(n, 3, h_gate());
            let cx = dd.mat_controlled(n, &[Control::pos(2)], 6, x_gate());
            let phase: Matrix2 = [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::from_polar(1.0, 0.7)],
            ];
            let p = dd.mat_single_qubit(n, 5, phase);
            let u1 = dd.mat_mat_mul(cx, h).unwrap();
            dd.mat_mat_mul(p, u1).unwrap()
        };
        let a = {
            let u = run(&mut seq);
            seq.mat_to_dense(u)
        };
        let b = {
            let u = run(&mut par);
            par.mat_to_dense(u)
        };
        for (r, (ra, rb)) in a.iter().zip(&b).enumerate() {
            for (c, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert!(x.approx_eq(*y, 1e-9), "({r},{c}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn single_lane_pool_never_forks() {
        let mut dd = DdManager::new();
        dd.set_par(pooled(1));
        assert!(
            dd.par_pool(12).is_none(),
            "parallelism 1 must stay sequential"
        );
        let n = 8;
        let v = dense_state(&mut dd, n);
        let h = dd.mat_single_qubit(n, 1, h_gate());
        // Runs through the ordinary sequential entry point.
        let _ = dd.mat_vec_mul(h, v).unwrap();
    }

    #[test]
    fn deadline_trips_mid_fork_join_and_manager_stays_consistent() {
        let n = 8;
        let mut dd = DdManager::new();
        dd.set_par(pooled(4));
        let v = dense_state(&mut dd, n);
        dd.inc_ref_vec(v);
        let h = dd.mat_single_qubit(n, 3, h_gate());
        dd.inc_ref_mat(h);

        // Arm an already-expired deadline: the par entry point does not
        // charge up front, so the trip happens inside the workers.
        dd.set_deadline(Some(Instant::now()));
        assert_eq!(dd.mat_vec_mul(h, v), Err(DdError::DeadlineExceeded));

        // The manager is still consistent: GC runs and the same operation
        // succeeds after the deadline is lifted.
        dd.set_deadline(None);
        dd.collect_garbage();
        let r = dd.mat_vec_mul(h, v).unwrap();
        assert!((dd.vec_norm_sqr(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_live_node_budget_trips_across_workers() {
        let n = 8;
        let mut dd = DdManager::new();
        dd.set_par(pooled(4));
        let v = dense_state(&mut dd, n);
        dd.inc_ref_vec(v);
        // Build a non-local gate so the product allocates real work.
        let h = dd.mat_single_qubit(n, 3, h_gate());
        dd.inc_ref_mat(h);

        // Arm a budget the workers' combined allocations must blow
        // through; refresh via set_deadline(None), which recomputes the
        // governed flag.
        let live = dd.live_vec_nodes() + dd.live_mat_nodes();
        dd.config.max_live_nodes = Some(live + 2);
        dd.set_deadline(None);
        assert!(dd.is_governed());

        match dd.mat_vec_mul(h, v) {
            Err(DdError::BudgetExceeded) => {
                let b = dd
                    .last_breach()
                    .expect("breach recorded on the coordinator");
                assert_eq!(b.resource, Resource::LiveNodes);
                assert_eq!(b.limit, (live + 2) as u64);
                assert!(b.observed > b.limit);
            }
            // A sibling cancelled before its own first charge also
            // reports as Cancelled if the budget worker finished last —
            // harvest ordering guarantees the budget error wins whenever
            // one was raised, so anything else is a failure.
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }

        // Recovery: lift the budget, GC, retry.
        dd.config.max_live_nodes = None;
        dd.set_deadline(None);
        dd.collect_garbage();
        let r = dd.mat_vec_mul(h, v).unwrap();
        assert!((dd.vec_norm_sqr(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn user_cancel_token_survives_internal_sibling_cancellation() {
        let n = 8;
        let mut dd = DdManager::new();
        dd.set_par(pooled(4));
        let v = dense_state(&mut dd, n);
        dd.inc_ref_vec(v);
        let h = dd.mat_single_qubit(n, 3, h_gate());
        dd.inc_ref_mat(h);

        let token = CancelToken::new();
        dd.set_cancel_token(Some(token.clone()));
        // Trip a deadline inside the workers; the internal child token
        // they cancel must NOT latch the user's token.
        dd.set_deadline(Some(Instant::now()));
        assert_eq!(dd.mat_vec_mul(h, v), Err(DdError::DeadlineExceeded));
        assert!(
            !token.is_cancelled(),
            "sibling cancellation leaked into the user's token"
        );
        dd.set_deadline(None);
        let _ = dd.mat_vec_mul(h, v).unwrap();
    }
}

//! Measurement, collapse, and sampling on vector DDs.
//!
//! Needed by the semiclassical (single-control-qubit) Shor circuit the
//! paper's *DD-construct* strategy relies on: the control qubit is measured
//! and reset 2n times, with classically controlled phase corrections.

use std::collections::HashMap;

use ddsim_complex::Complex;

use crate::edge::{Level, NodeId, VecEdge};
use crate::manager::DdManager;

impl DdManager {
    /// Probability that measuring `qubit` (0 = topmost) yields `1`.
    ///
    /// The state is assumed normalized; un-normalized states return the
    /// weighted fraction `P(1) / (P(0) + P(1))` scaled by the total norm.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range for the edge's level.
    pub fn prob_one(&self, v: VecEdge, qubit: u32) -> f64 {
        let n = self.vec_level(v);
        assert!(qubit < n, "measured qubit out of range");
        let target_level = self.var_order.level_of(n, qubit);
        let mut norm_cache = HashMap::new();
        let mut prob_cache = HashMap::new();
        let w2 = self.complex_value(v.weight).norm_sqr();
        w2 * self.prob_one_rec(v.node, target_level, &mut prob_cache, &mut norm_cache)
    }

    fn prob_one_rec(
        &self,
        node: NodeId,
        target_level: Level,
        prob_cache: &mut HashMap<NodeId, f64>,
        norm_cache: &mut HashMap<NodeId, f64>,
    ) -> f64 {
        debug_assert!(!node.is_terminal());
        if let Some(&p) = prob_cache.get(&node) {
            return p;
        }
        let n = *self.vec_node(node);
        let p = if n.level == target_level {
            let child = n.edges[1];
            if child.is_zero() {
                0.0
            } else {
                self.complex_value(child.weight).norm_sqr()
                    * self.norm_sqr_rec(child.node, norm_cache)
            }
        } else {
            let mut total = 0.0;
            for child in n.edges {
                if !child.is_zero() {
                    total += self.complex_value(child.weight).norm_sqr()
                        * self.prob_one_rec(child.node, target_level, prob_cache, norm_cache);
                }
            }
            total
        };
        prob_cache.insert(node, p);
        p
    }

    /// Projects the state onto `qubit = outcome` and renormalizes.
    ///
    /// Returns the collapsed state. The probability of `outcome` must be
    /// positive.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the outcome has (numerically)
    /// zero probability.
    pub fn collapse(&mut self, v: VecEdge, qubit: u32, outcome: bool) -> VecEdge {
        let n = self.vec_level(v);
        assert!(qubit < n, "measured qubit out of range");
        let p1 = self.prob_one(v, qubit);
        let p = if outcome { p1 } else { 1.0 - p1 };
        assert!(
            p > 1e-15,
            "collapse onto an outcome with zero probability (p = {p})"
        );
        let target_level = self.var_order.level_of(n, qubit);
        let mut memo = HashMap::new();
        let projected = self.project_rec(v, target_level, outcome, &mut memo);
        if self.config.fault == crate::FaultKind::CollapseSkipsRenormalize {
            // Injected fault: return the bare projection, leaving the
            // state with norm p instead of 1.
            return projected;
        }
        // Renormalize: divide the root weight by sqrt(p).
        let scale = self.intern(Complex::real(1.0 / p.sqrt()));
        VecEdge {
            node: projected.node,
            weight: self.complex.mul(projected.weight, scale),
        }
    }

    fn project_rec(
        &mut self,
        e: VecEdge,
        target_level: Level,
        outcome: bool,
        memo: &mut HashMap<NodeId, VecEdge>,
    ) -> VecEdge {
        if e.is_zero() {
            return VecEdge::ZERO;
        }
        debug_assert!(!e.node.is_terminal());
        if let Some(&unit) = memo.get(&e.node) {
            return VecEdge {
                node: unit.node,
                weight: self.complex.mul(unit.weight, e.weight),
            };
        }
        let node = *self.vec_node(e.node);
        let unit = if node.level == target_level {
            let children = if outcome {
                [VecEdge::ZERO, node.edges[1]]
            } else {
                [node.edges[0], VecEdge::ZERO]
            };
            self.make_vec_node(node.level, children)
        } else {
            let lo = self.project_rec(node.edges[0], target_level, outcome, memo);
            let hi = self.project_rec(node.edges[1], target_level, outcome, memo);
            self.make_vec_node(node.level, [lo, hi])
        };
        memo.insert(e.node, unit);
        VecEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, e.weight),
        }
    }

    /// Measures `qubit`, choosing the outcome with `unit_random ∈ [0, 1)`,
    /// and returns `(outcome, collapsed_state)`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn measure_qubit(&mut self, v: VecEdge, qubit: u32, unit_random: f64) -> (bool, VecEdge) {
        let p1 = self.prob_one(v, qubit);
        let outcome = unit_random < p1;
        let collapsed = self.collapse(v, qubit, outcome);
        (outcome, collapsed)
    }

    /// Samples a full computational-basis measurement without collapsing the
    /// state, drawing one uniform random number per qubit from `rand_fn`.
    ///
    /// Returns the sampled basis index (qubit 0 in the top bit, matching
    /// [`vec_basis`](Self::vec_basis)).
    pub fn sample(&self, v: VecEdge, rand_fn: &mut dyn FnMut() -> f64) -> u64 {
        let mut norm_cache = HashMap::new();
        let mut index = 0u64;
        let mut node = v.node;
        let width = self.vec_level(v);
        let mut level = width;
        while !node.is_terminal() {
            let n = *self.vec_node(node);
            let w0 = if n.edges[0].is_zero() {
                0.0
            } else {
                self.complex_value(n.edges[0].weight).norm_sqr()
                    * self.norm_sqr_rec(n.edges[0].node, &mut norm_cache)
            };
            let w1 = if n.edges[1].is_zero() {
                0.0
            } else {
                self.complex_value(n.edges[1].weight).norm_sqr()
                    * self.norm_sqr_rec(n.edges[1].node, &mut norm_cache)
            };
            let total = w0 + w1;
            let bit = if total <= 0.0 {
                0
            } else if rand_fn() * total < w1 {
                1
            } else {
                0
            };
            if bit == 1 {
                // Level `level` decides the qubit the order puts there; the
                // returned index is always externally (qubit-)indexed.
                index |= 1 << (width - 1 - self.var_order.qubit_at(width, level));
                node = n.edges[1].node;
            } else {
                node = n.edges[0].node;
            }
            level -= 1;
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix2;

    fn h_gate() -> Matrix2 {
        let h = Complex::SQRT2_INV;
        [[h, h], [h, -h]]
    }

    #[test]
    fn basis_state_probabilities() {
        let mut dd = DdManager::new();
        let v = dd.vec_basis(3, 0b101);
        assert!((dd.prob_one(v, 0) - 1.0).abs() < 1e-12);
        assert!(dd.prob_one(v, 1).abs() < 1e-12);
        assert!((dd.prob_one(v, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_probability_is_half() {
        let mut dd = DdManager::new();
        let v0 = dd.vec_basis(2, 0);
        let h = dd.mat_single_qubit(2, 0, h_gate());
        let v = dd.mat_vec_mul(h, v0).unwrap();
        assert!((dd.prob_one(v, 0) - 0.5).abs() < 1e-12);
        assert!(dd.prob_one(v, 1).abs() < 1e-12);
    }

    #[test]
    fn collapse_renormalizes() {
        let mut dd = DdManager::new();
        let v0 = dd.vec_basis(2, 0);
        let h = dd.mat_single_qubit(2, 0, h_gate());
        let v = dd.mat_vec_mul(h, v0).unwrap();
        let c = dd.collapse(v, 0, true);
        assert!((dd.vec_norm_sqr(c) - 1.0).abs() < 1e-10);
        assert!((dd.prob_one(c, 0) - 1.0).abs() < 1e-10);
        // Collapsed onto |10⟩.
        assert!(dd.vec_amplitude(c, 0b10).abs() > 0.999);
    }

    #[test]
    fn collapse_of_entangled_pair_fixes_partner() {
        // Bell state (|00⟩+|11⟩)/√2: measuring q0=1 forces q1=1.
        let mut dd = DdManager::new();
        let amps = [
            Complex::SQRT2_INV,
            Complex::ZERO,
            Complex::ZERO,
            Complex::SQRT2_INV,
        ];
        let v = dd.vec_from_amplitudes(&amps);
        let c = dd.collapse(v, 0, true);
        assert!((dd.prob_one(c, 1) - 1.0).abs() < 1e-10);
        let c0 = dd.collapse(v, 0, false);
        assert!(dd.prob_one(c0, 1).abs() < 1e-10);
    }

    #[test]
    fn measure_qubit_follows_random_draw() {
        let mut dd = DdManager::new();
        let amps = [
            Complex::SQRT2_INV,
            Complex::ZERO,
            Complex::ZERO,
            Complex::SQRT2_INV,
        ];
        let v = dd.vec_from_amplitudes(&amps);
        let (o_low, _) = dd.measure_qubit(v, 0, 0.1);
        let (o_high, _) = dd.measure_qubit(v, 0, 0.9);
        assert!(o_low, "draw below p1=0.5 must give outcome 1");
        assert!(!o_high, "draw above p1=0.5 must give outcome 0");
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut dd = DdManager::new();
        // |ψ⟩ = |11⟩ deterministic: every sample must be 3.
        let v = dd.vec_basis(2, 3);
        let mut counter = 0.0;
        let mut next = move || {
            counter += 0.37;
            counter % 1.0
        };
        for _ in 0..16 {
            assert_eq!(dd.sample(v, &mut next), 3);
        }
    }

    #[test]
    fn sampling_uniform_superposition_hits_all_outcomes() {
        let mut dd = DdManager::new();
        let amps = vec![Complex::real(0.5); 4];
        let v = dd.vec_from_amplitudes(&amps);
        // Low-discrepancy deterministic sequence covering [0,1).
        let mut x = 0.0f64;
        let mut next = move || {
            x = (x + 0.381_966) % 1.0;
            x
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(dd.sample(v, &mut next));
        }
        assert_eq!(seen.len(), 4, "all four outcomes must appear");
    }

    #[test]
    #[should_panic(expected = "zero probability")]
    fn collapse_on_impossible_outcome_panics() {
        let mut dd = DdManager::new();
        let v = dd.vec_basis(2, 0);
        let _ = dd.collapse(v, 0, true);
    }
}

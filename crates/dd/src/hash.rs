//! Re-export of the shared FxHash implementation.
//!
//! The hasher was hoisted into `ddsim-complex` (the bottom crate of the
//! workspace) so the [`ComplexTable`](ddsim_complex::ComplexTable) bucket
//! map — the hottest hash lookup in the repo — can use it too. Downstream
//! users of `ddsim_dd::{fx_hash, FxHashMap, FxHasher}` are unaffected.

pub use ddsim_complex::hash::{fx_hash, FxHashMap, FxHasher};

//! A small, dependency-free work-stealing thread pool.
//!
//! This is the execution substrate for every parallel surface in the
//! workspace: the fork-join multiplication kernels (`par.rs`), the
//! engine's shot-sampling and noise-trajectory loops, and the fuzz
//! harness's config-lattice sweep. The design follows the faer-rs idiom
//! of passing a parallelism *capability* down into kernels (see [`Par`] in
//! `par.rs`) rather than spawning threads at use sites:
//!
//! * one pool is created per simulator / harness and reused for its whole
//!   lifetime — workers park on a condvar between batches, so an idle pool
//!   costs nothing;
//! * each worker owns a deque; batch submission round-robins tasks across
//!   the deques, workers pop their own front and **steal from the back**
//!   of their peers (plus a shared injector for external submissions), so
//!   imbalanced task sizes rebalance without a central queue bottleneck;
//! * the submitting thread is a full participant: [`ThreadPool::run_batch`]
//!   executes tasks on the caller too, so a pool of parallelism `n` spawns
//!   only `n - 1` OS threads and `n = 1` degenerates to plain inline
//!   execution with no cross-thread traffic at all.
//!
//! Task panics are caught per task, the batch is still drained to
//! completion (so borrowed data cannot escape), and the first panic is
//! re-raised on the submitting thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A boxed unit of work. Lifetimes are erased by [`ThreadPool::run_batch`],
/// which guarantees the whole batch has finished before it returns.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// Per-worker deques: worker `i` pops the *front* of `queues[i]` and
    /// steals from the *back* of every other queue.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow / external submissions (also stolen from).
    injector: Mutex<VecDeque<Job>>,
    /// Wake-up generation counter; bumped (under the lock) on every
    /// submission so sleeping workers cannot miss work.
    sleep_gen: Mutex<u64>,
    /// Workers park here when every queue is empty.
    wakeup: Condvar,
    /// Latched by `Drop`; workers exit once set and out of work.
    shutdown: AtomicBool,
}

impl Shared {
    /// Takes one job: own queue front first, then the injector, then
    /// steals from peers' backs. `home` is `usize::MAX` for non-worker
    /// (submitting) threads, which scan the injector and steal only.
    fn find_job(&self, home: usize) -> Option<Job> {
        if let Some(q) = self.queues.get(home) {
            if let Some(job) = q.lock().expect("pool queue poisoned").pop_front() {
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
        {
            return Some(job);
        }
        for (i, q) in self.queues.iter().enumerate() {
            if i == home {
                continue;
            }
            if let Some(job) = q.lock().expect("pool queue poisoned").pop_back() {
                return Some(job);
            }
        }
        None
    }

    /// Bumps the wake-up generation and rouses every parked worker.
    fn notify(&self) {
        let mut gen = self.sleep_gen.lock().expect("pool sleep lock poisoned");
        *gen = gen.wrapping_add(1);
        drop(gen);
        self.wakeup.notify_all();
    }
}

/// The worker main loop: run jobs until shutdown.
fn worker_loop(shared: Arc<Shared>, home: usize) {
    loop {
        // Snapshot the generation BEFORE scanning, so a submission that
        // races with an empty scan bumps the generation and the wait
        // below returns immediately instead of sleeping through it.
        let seen = *shared.sleep_gen.lock().expect("pool sleep lock poisoned");
        if let Some(job) = shared.find_job(home) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut gen = shared.sleep_gen.lock().expect("pool sleep lock poisoned");
        while *gen == seen && !shared.shutdown.load(Ordering::Acquire) {
            gen = shared.wakeup.wait(gen).expect("pool sleep lock poisoned");
        }
    }
}

/// Completion tracking for one [`ThreadPool::run_batch`] call.
struct Batch {
    /// Tasks not yet finished.
    remaining: AtomicUsize,
    /// First panic payload observed, re-raised on the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Submitter parks here once it runs out of tasks to help with.
    done_lock: Mutex<()>,
    done: Condvar,
}

/// A fixed-size work-stealing thread pool (see the module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Total parallelism including the submitting thread.
    parallelism: usize,
    /// Round-robin cursor for batch distribution.
    next_queue: AtomicUsize,
}

impl ThreadPool {
    /// Creates a pool with total parallelism `parallelism` (clamped to at
    /// least 1): `parallelism - 1` worker threads are spawned, and the
    /// thread calling [`run_batch`](Self::run_batch) is the final lane.
    pub fn new(parallelism: usize) -> ThreadPool {
        let parallelism = parallelism.max(1);
        let workers = parallelism - 1;
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep_gen: Mutex::new(0),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dd-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            parallelism,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// Total parallelism (worker threads + the submitting thread).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Runs every task to completion, distributing them across the
    /// workers' deques with the calling thread participating. Returns only
    /// after **all** tasks have finished (panicked tasks count as
    /// finished); the first panic is then re-raised on the caller.
    ///
    /// Tasks may borrow from the caller's stack: the completion barrier is
    /// what makes the internal lifetime erasure sound.
    pub fn run_batch<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        // Fast path: nothing to distribute to.
        if self.shared.queues.is_empty() || tasks.len() == 1 {
            let mut first_panic = None;
            for task in tasks {
                if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
                    first_panic.get_or_insert(p);
                }
            }
            if let Some(p) = first_panic {
                resume_unwind(p);
            }
            return;
        }
        let batch = Arc::new(Batch {
            remaining: AtomicUsize::new(tasks.len()),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let start = self.next_queue.fetch_add(tasks.len(), Ordering::Relaxed);
        for (i, task) in tasks.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
                    batch
                        .panic
                        .lock()
                        .expect("batch panic slot poisoned")
                        .get_or_insert(p);
                }
                if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _guard = batch.done_lock.lock().expect("batch lock poisoned");
                    batch.done.notify_all();
                }
            });
            // SAFETY: `wrapped` borrows data that lives for `'scope`. This
            // function does not return until `batch.remaining` hits zero,
            // i.e. until every wrapped task has run (or been drained on a
            // worker), so no borrow outlives the caller's frame.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped) };
            let slot = (start + i) % self.shared.queues.len();
            self.shared.queues[slot]
                .lock()
                .expect("pool queue poisoned")
                .push_back(job);
        }
        self.shared.notify();
        // Help: the submitting thread executes queued jobs while the batch
        // drains. It may pick up jobs from an unrelated concurrent batch —
        // harmless, they are self-contained by the same argument.
        while batch.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = self.shared.find_job(usize::MAX) {
                job();
                continue;
            }
            let guard = batch.done_lock.lock().expect("batch lock poisoned");
            if batch.remaining.load(Ordering::Acquire) > 0 {
                // Bounded wait: a job stolen by a worker *after* our scan
                // could finish without re-notifying this exact condvar
                // cycle; the timeout keeps the submitter live-checking.
                let _ = batch
                    .done
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .expect("batch lock poisoned");
            }
        }
        let panicked = batch
            .panic
            .lock()
            .expect("batch panic slot poisoned")
            .take();
        if let Some(p) = panicked {
            resume_unwind(p);
        }
    }

    /// Submits one fire-and-forget job to the pool's injector queue and
    /// returns immediately. Unlike [`run_batch`](Self::run_batch) there is
    /// no completion barrier, so the job must own its data (`'static`).
    ///
    /// The job is wrapped in `catch_unwind` *here*: worker threads run
    /// injector jobs bare, and a helping `run_batch` submitter can pick
    /// them up too, so an unwrapped panic would either kill a worker
    /// thread or tear through an unrelated batch. The panic payload is
    /// dropped — callers that need to observe panics (e.g. a supervisor)
    /// must install their own `catch_unwind` inside the job.
    ///
    /// A pool with parallelism 1 has no worker threads and nothing ever
    /// drains the injector between batches; in that case the job runs
    /// inline on the calling thread before `submit` returns.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let wrapped: Job = Box::new(move || {
            let _ = catch_unwind(AssertUnwindSafe(job));
        });
        if self.shared.queues.is_empty() {
            wrapped();
            return;
        }
        self.shared
            .injector
            .lock()
            .expect("pool injector poisoned")
            .push_back(wrapped);
        self.shared.notify();
    }

    /// Applies `f` to every index in `0..n` in parallel: one task per lane
    /// pulls indices from a shared counter, so uneven per-index costs
    /// rebalance automatically. Order of execution is unspecified; `f`
    /// must be safe to call concurrently.
    pub fn par_for_each_index(&self, n: usize, f: impl Fn(usize) + Sync) {
        if n == 0 {
            return;
        }
        let lanes = self.parallelism.min(n);
        if lanes <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let next = &next;
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..lanes)
            .map(|_| {
                Box::new(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    f(i);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run_batch(tasks);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|i| {
                let slot = &hits[i];
                Box::new(move || {
                    slot.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "task {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPool::new(3);
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            pool.par_for_each_index(100, |i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950 + 100 * round);
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.parallelism(), 1);
        let mut seen = Vec::new();
        let seen_ref = Mutex::new(&mut seen);
        pool.par_for_each_index(5, |i| {
            seen_ref.lock().unwrap().push(i);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn task_panic_is_reraised_after_the_batch_drains() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 7 {
                            panic!("boom in task 7");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
        }));
        assert!(result.is_err(), "the task panic must propagate");
        // Every non-panicking task still ran: the batch drains fully
        // before the panic is re-raised.
        assert_eq!(completed.load(Ordering::Relaxed), 15);
        // And the pool survives for the next batch.
        let sum = AtomicUsize::new(0);
        pool.par_for_each_index(10, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn borrowed_state_is_visible_after_the_batch() {
        let pool = ThreadPool::new(4);
        let results: Vec<Mutex<u64>> = (0..32).map(|_| Mutex::new(0)).collect();
        pool.par_for_each_index(32, |i| {
            *results[i].lock().unwrap() = (i as u64) * 3;
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.lock().unwrap(), (i as u64) * 3);
        }
    }

    #[test]
    fn submitted_jobs_run_and_panics_are_contained() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                if i % 8 == 3 {
                    panic!("boom in submitted job {i}");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // No barrier on submit: poll until the non-panicking jobs land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::Relaxed) < 28 {
            assert!(
                std::time::Instant::now() < deadline,
                "submitted jobs did not drain: {}/28",
                done.load(Ordering::Relaxed)
            );
            std::thread::yield_now();
        }
        // The panicking jobs killed no worker: a batch still completes and
        // its own panic protocol is unaffected.
        let sum = AtomicUsize::new(0);
        pool.par_for_each_index(100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn submit_on_single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.submit(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        // Inline execution: visible immediately, no polling needed.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        let r = Arc::clone(&ran);
        pool.submit(move || panic!("inline panic must not escape {r:p}"));
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stealing_drains_an_imbalanced_batch() {
        // One long task pins a worker; the remaining short tasks must be
        // stolen and completed by the other lanes.
        let pool = ThreadPool::new(4);
        let done = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..40)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(done.load(Ordering::Relaxed), 40);
    }
}

//! Graphviz DOT export for visual inspection of decision diagrams — the
//! tool behind figures like the paper's Fig. 2 and Fig. 5.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::edge::{MatEdge, NodeId, VecEdge};
use crate::manager::DdManager;

impl DdManager {
    /// Renders a vector DD as a Graphviz DOT digraph.
    pub fn vec_to_dot(&self, e: VecEdge) -> String {
        let mut out = String::from("digraph vectordd {\n  rankdir=TB;\n");
        let _ = writeln!(out, "  root [shape=point];");
        let mut names = HashMap::new();
        let width = self.vec_level(e);
        self.vec_dot_node(e.node, width, &mut names, &mut out);
        let w = self.complex_value(e.weight);
        let _ = writeln!(
            out,
            "  root -> {} [label=\"{w}\"];",
            dot_name(e.node, &names)
        );
        out.push_str("}\n");
        out
    }

    fn vec_dot_node(
        &self,
        node: NodeId,
        width: u32,
        names: &mut HashMap<NodeId, usize>,
        out: &mut String,
    ) {
        if node.is_terminal() || names.contains_key(&node) {
            return;
        }
        let id = names.len();
        names.insert(node, id);
        let n = *self.vec_node(node);
        let qubit = self.var_order.qubit_at(width, n.level);
        let _ = writeln!(out, "  n{id} [label=\"q{qubit} (level {})\"];", n.level);
        for (i, child) in n.edges.iter().enumerate() {
            if child.is_zero() {
                let _ = writeln!(out, "  z{id}_{i} [label=\"0\", shape=box];");
                let _ = writeln!(out, "  n{id} -> z{id}_{i} [style=dashed];");
                continue;
            }
            self.vec_dot_node(child.node, width, names, out);
            let w = self.complex_value(child.weight);
            let _ = writeln!(
                out,
                "  n{id} -> {} [label=\"{}: {w}\"];",
                dot_name(child.node, names),
                i
            );
        }
    }

    /// Renders a matrix DD as a Graphviz DOT digraph.
    pub fn mat_to_dot(&self, e: MatEdge) -> String {
        let mut out = String::from("digraph matrixdd {\n  rankdir=TB;\n");
        let _ = writeln!(out, "  root [shape=point];");
        let mut names = HashMap::new();
        let width = self.mat_level(e);
        self.mat_dot_node(e.node, width, &mut names, &mut out);
        let w = self.complex_value(e.weight);
        let _ = writeln!(
            out,
            "  root -> {} [label=\"{w}\"];",
            dot_name(e.node, &names)
        );
        out.push_str("}\n");
        out
    }

    fn mat_dot_node(
        &self,
        node: NodeId,
        width: u32,
        names: &mut HashMap<NodeId, usize>,
        out: &mut String,
    ) {
        if node.is_terminal() || names.contains_key(&node) {
            return;
        }
        let id = names.len();
        names.insert(node, id);
        let n = *self.mat_node(node);
        let qubit = self.var_order.qubit_at(width, n.level);
        let _ = writeln!(out, "  n{id} [label=\"q{qubit} (level {})\"];", n.level);
        for (i, child) in n.edges.iter().enumerate() {
            if child.is_zero() {
                continue;
            }
            self.mat_dot_node(child.node, width, names, out);
            let w = self.complex_value(child.weight);
            let _ = writeln!(
                out,
                "  n{id} -> {} [label=\"{:02b}: {w}\"];",
                dot_name(child.node, names),
                i
            );
        }
    }
}

fn dot_name(node: NodeId, names: &HashMap<NodeId, usize>) -> String {
    if node.is_terminal() {
        "terminal".to_string()
    } else {
        format!("n{}", names[&node])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_dot_contains_nodes_and_root() {
        let mut dd = DdManager::new();
        let v = dd.vec_basis(2, 0b01);
        let dot = dd.vec_to_dot(v);
        assert!(dot.starts_with("digraph vectordd"));
        assert!(dot.contains("root ->"));
        assert!(dot.contains("level 2"));
        assert!(dot.contains("level 1"));
    }

    #[test]
    fn matrix_dot_renders_identity() {
        let mut dd = DdManager::new();
        let m = dd.mat_identity(2);
        let dot = dd.mat_to_dot(m);
        assert!(dot.starts_with("digraph matrixdd"));
        // Diagonal edges labelled 00 and 11 must appear.
        assert!(dot.contains("00:"));
        assert!(dot.contains("11:"));
    }

    #[test]
    fn terminal_only_edge_renders() {
        let dd = DdManager::new();
        let dot = dd.vec_to_dot(crate::edge::VecEdge::ZERO);
        assert!(dot.contains("root -> terminal"));
    }
}

//! The [`DdManager`]: arenas, unique tables, normalization, reference
//! counting, and garbage collection for vector and matrix decision diagrams.
//!
//! All DD operations go through a manager; edges returned by one manager must
//! never be fed to another. Nodes are arena-allocated and hash-consed through
//! the unique tables, so structural equality of sub-diagrams is pointer
//! (index) equality — the property that makes memoized DD operations sound.
//!
//! # Epochs
//!
//! Garbage collection does **not** clear the compute tables. The manager
//! keeps a monotonically increasing `epoch` (starting at 1); every arena
//! slot records the epoch at which it was last freed (`free_epoch`, 0 for
//! never) and every compute-table entry records the epoch at which it was
//! written. An entry is valid iff every node it references satisfies
//! `free_epoch[node] < entry.epoch` — i.e. the slot has not been freed
//! (and possibly reused by an unrelated node) since the entry was written.
//! Cached results whose diagrams survive a collection keep paying off
//! across it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ddsim_complex::{Complex, ComplexId, ComplexTable};

use crate::compute::{CacheStats, ComputeTables};
use crate::edge::{Level, MatEdge, NodeId, VecEdge};
use crate::error::{BudgetBreach, CancelToken, DdError, Resource};
use crate::par::{Par, SharedLiveBudget};
use crate::unique::UniqueTable;

/// A vector-DD node: two successors (upper / lower half of the sub-vector).
///
/// 24 bytes: level + two (node, weight) edges. With the slot's `free_epoch`
/// alongside (see [`Slot`]), a node and everything the kernels read about
/// it — children, weights, cache-validation epoch — sit in 28 contiguous
/// bytes, at most one cache-line boundary away from each other.
#[derive(Clone, Copy, Debug)]
pub(crate) struct VecNode {
    pub level: Level,
    pub edges: [VecEdge; 2],
}

/// A matrix-DD node: four successors (the four quadrants, row-major).
#[derive(Clone, Copy, Debug)]
pub(crate) struct MatNode {
    pub level: Level,
    pub edges: [MatEdge; 4],
    /// Whether this node denotes the identity matrix of its level.
    ///
    /// Computed once at construction: the node is an identity iff its
    /// off-diagonal quadrants are zero and both diagonal edges are the
    /// *same* unit-weight edge to the identity one level below (or the
    /// terminal at level 1). Normalization guarantees any scalar multiple
    /// of the identity canonicalizes to this node with the scalar on the
    /// incoming edge, which is what makes the O(1) check sound.
    pub identity: bool,
}

/// Node types the [`Arena`] can store: they designate a sentinel value for
/// freed slots (a level no real node can have — levels start at 1), so the
/// arena needs no `Option`/enum discriminant around the node payload.
pub(crate) trait ArenaNode: Copy {
    /// The freed-slot sentinel.
    const FREE: Self;
    /// Whether this is the freed-slot sentinel.
    fn is_free(&self) -> bool;
}

impl ArenaNode for VecNode {
    const FREE: VecNode = VecNode {
        level: Level::MAX,
        edges: [VecEdge::ZERO; 2],
    };

    #[inline]
    fn is_free(&self) -> bool {
        self.level == Level::MAX
    }
}

impl ArenaNode for MatNode {
    const FREE: MatNode = MatNode {
        level: Level::MAX,
        edges: [MatEdge::ZERO; 4],
        identity: false,
    };

    #[inline]
    fn is_free(&self) -> bool {
        self.level == Level::MAX
    }
}

/// One arena slot: the node plus the epoch at which this slot was last
/// freed (0 = never). Freed slots hold [`ArenaNode::FREE`] and are chained
/// through the free list.
///
/// `free_epoch` lives *in* the slot (PR 7; it used to be a separate
/// parallel vector): the compute-table validity check reads a node's
/// `free_epoch` immediately before or after the kernels read the node's
/// edges, so keeping them on the same cache line turns two random accesses
/// per child into one. It is deliberately **not** reset when a slot is
/// reused — stale compute entries must never alias a new resident.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot<N> {
    pub(crate) node: N,
    pub(crate) free_epoch: u32,
}

pub(crate) struct Arena<N> {
    pub(crate) slots: Vec<Slot<N>>,
    pub(crate) refcounts: Vec<u32>,
    pub(crate) free: Vec<u32>,
}

impl<N: ArenaNode> Arena<N> {
    fn new() -> Self {
        Arena {
            slots: Vec::new(),
            refcounts: Vec::new(),
            free: Vec::new(),
        }
    }

    fn get(&self, id: NodeId) -> &N {
        let slot = &self.slots[id.index()];
        assert!(!slot.node.is_free(), "use-after-free of DD node {id:?}");
        &slot.node
    }

    /// Whether a compute-table entry written at `entry_epoch` may still
    /// reference `id`: the slot has not been freed (and possibly reused by
    /// an unrelated node) since the entry was written.
    #[inline]
    pub(crate) fn is_live(&self, id: NodeId, entry_epoch: u32) -> bool {
        id.is_terminal() || self.slots[id.index()].free_epoch < entry_epoch
    }

    fn alloc(&mut self, node: N) -> NodeId {
        if let Some(idx) = self.free.pop() {
            // Keep the old free_epoch: entries cached before the previous
            // occupant was freed must stay invalid for the new resident.
            self.slots[idx as usize].node = node;
            self.refcounts[idx as usize] = 0;
            NodeId(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("DD arena overflow");
            self.slots.push(Slot {
                node,
                free_epoch: 0,
            });
            self.refcounts.push(0);
            NodeId(idx)
        }
    }

    fn free_slot(&mut self, id: NodeId, epoch: u32) -> N {
        let slot = &mut self.slots[id.index()];
        assert!(!slot.node.is_free(), "double free of DD node {id:?}");
        let node = std::mem::replace(&mut slot.node, N::FREE);
        slot.free_epoch = epoch;
        self.free.push(id.0);
        node
    }

    fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Heap bytes held by the arena's parallel vectors (capacity-based,
    /// O(1)); feeds the governor's table-byte accounting.
    fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<N>>()
            + self.refcounts.capacity() * std::mem::size_of::<u32>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// `(key, id)` pairs of every occupied slot, for unique-table rebuilds.
    fn live_entries<'a, K>(
        &'a self,
        key_of: impl Fn(&N) -> K + 'a,
    ) -> impl Iterator<Item = (K, NodeId)> + 'a
    where
        K: 'static,
    {
        self.slots.iter().enumerate().filter_map(move |(i, slot)| {
            if slot.node.is_free() {
                None
            } else {
                Some((key_of(&slot.node), NodeId(i as u32)))
            }
        })
    }
}

/// Cumulative operation statistics, used by the paper's Example-3-style
/// traces and by the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DdStats {
    /// Matrix-vector multiplications performed (top-level calls).
    pub mat_vec_mults: u64,
    /// Matrix-matrix multiplications performed (top-level calls).
    pub mat_mat_mults: u64,
    /// Recursive multiply steps (both kinds), a machine-independent cost proxy.
    pub mult_recursions: u64,
    /// Recursive addition steps.
    pub add_recursions: u64,
    /// Compute-table hits across all operation caches.
    pub compute_hits: u64,
    /// Compute-table lookups across all operation caches.
    pub compute_lookups: u64,
    /// Multiplications short-circuited on a recognized identity operand.
    pub identity_skips: u64,
    /// Gate applications served by the specialized identity-skipping
    /// kernels ([`DdManager::apply_single_qubit`] /
    /// [`DdManager::apply_controlled`]) without building a matrix DD.
    pub specialized_applies: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Per-table cache counters (compute and unique tables).
    pub cache: CacheStats,
}

/// Configuration for a [`DdManager`].
#[derive(Clone, Copy, Debug)]
pub struct DdConfig {
    /// Numerical tolerance for unifying edge weights.
    pub tolerance: f64,
    /// Run garbage collection once the live node count exceeds this value
    /// (checked only inside [`DdManager::maybe_collect`]).
    pub gc_threshold: usize,
    /// log2 of each compute table's slot count. The tables are
    /// direct-mapped and lossy, so this bounds cache memory; larger values
    /// trade memory for fewer collision evictions.
    pub compute_table_bits: u32,
    /// log2 of each unique table's *initial* slot count (they grow, and
    /// GC rebuilds shrink back toward this floor).
    pub unique_table_bits: u32,
    /// Disables all compute-table memoization when `false` (the diagrams
    /// produced are identical; only the work to build them changes).
    pub cache_enabled: bool,
    /// Enables identity recognition in the multiplication kernels and the
    /// specialized gate-application fast paths when `true`. Disabling
    /// routes everything through the generic recursions (the diagrams
    /// produced are identical; only the work to build them changes).
    pub identity_skip: bool,
    /// Budget on live (allocated, not freed) nodes across both arenas.
    /// `None` disables the check. Enforced at amortized O(1) cost inside
    /// the operation recursions (see `DdManager::charge`); overshoot is
    /// bounded by one check interval of allocations.
    pub max_live_nodes: Option<usize>,
    /// Budget on bytes held by the arenas, unique tables, and compute
    /// tables. `None` disables the check. Because unique-table growth
    /// stays infallible (a failed rehash mid-insert would strand nodes),
    /// the budget is enforced at the next amortized check; overshoot is
    /// bounded by one capacity doubling of the largest table.
    pub max_table_bytes: Option<usize>,
    /// Uses the SIMD (SSE2/AVX) leaf kernels for complex-table probes and
    /// batched edge-weight arithmetic when `true` (the default) and the
    /// hardware supports them. The scalar fallback is **bitwise
    /// identical** — every diagram, amplitude, and statistics counter is
    /// the same either way (property-tested) — so this is purely a
    /// performance switch. Dispatch is resolved once at manager (or
    /// snapshot-restore) construction, never per recursion step. No-op
    /// when the `simd` cargo feature is compiled out or on non-x86-64
    /// targets.
    pub simd: bool,
    /// Test-only fault injection used by the fuzzing harness's
    /// `--self-check` to prove its oracles catch engine defects. Must stay
    /// [`FaultKind::None`] everywhere else.
    pub fault: crate::FaultKind,
}

impl Default for DdConfig {
    fn default() -> Self {
        DdConfig {
            tolerance: ddsim_complex::DEFAULT_TOLERANCE,
            gc_threshold: 250_000,
            compute_table_bits: 16,
            unique_table_bits: 14,
            cache_enabled: true,
            identity_skip: true,
            max_live_nodes: None,
            max_table_bytes: None,
            simd: true,
            fault: crate::FaultKind::None,
        }
    }
}

/// Owner of all decision-diagram state: node arenas, unique tables, the
/// complex-weight table, memoization caches, and statistics.
///
/// # Examples
///
/// ```
/// use ddsim_dd::DdManager;
///
/// let mut dd = DdManager::new();
/// let state = dd.vec_basis(3, 0b010);
/// assert_eq!(dd.vec_node_count(state), 3);
/// ```
pub struct DdManager {
    pub(crate) complex: ComplexTable,
    pub(crate) vec_arena: Arena<VecNode>,
    pub(crate) mat_arena: Arena<MatNode>,
    pub(crate) vec_unique: UniqueTable<(Level, [VecEdge; 2])>,
    pub(crate) mat_unique: UniqueTable<(Level, [MatEdge; 4])>,
    pub(crate) compute: ComputeTables,
    /// Current epoch (starts at 1; 0 is the compute tables' empty
    /// sentinel). Incremented by every garbage collection.
    pub(crate) epoch: u32,
    pub(crate) stats: DdStats,
    pub(crate) config: DdConfig,
    /// Canonical identity edges by qubit count (`identity_cache[i]` is the
    /// identity over `i + 1` qubits). Nodes are ref-pinned so they survive
    /// garbage collection; all weights are ONE.
    pub(crate) identity_cache: Vec<MatEdge>,
    /// Interned specialized gate operations (see `apply.rs`).
    pub(crate) apply_ops: crate::apply::ApplyOpRegistry,
    /// Wall-clock deadline; operations unwind with
    /// [`DdError::DeadlineExceeded`] once it passes.
    deadline: Option<Instant>,
    /// Cooperative cancellation flag; operations unwind with
    /// [`DdError::Cancelled`] once it latches.
    cancel: Option<CancelToken>,
    /// Countdown to the next full governor check (see [`charge`](Self::charge)).
    charge_countdown: u32,
    /// Depth of governor suspensions: while positive, `charge` never
    /// fails. Used by infallible constructors (gate building) whose work
    /// per call is O(qubits) and therefore cannot run away.
    governor_suspended: u32,
    /// Cached "any limit configured?" flag: true iff a budget, deadline,
    /// or cancel token is set. Read once per top-level operation by the
    /// entry points in `ops.rs` / `apply.rs` to pick the governed or
    /// ungoverned kernel instantiation (see `govern.rs`) — when false,
    /// the recursions carry no charge branches at all.
    governed: bool,
    /// Details of the most recent budget trip (the matching
    /// [`DdError::BudgetExceeded`] is a bare discriminant; see
    /// [`BudgetBreach`]).
    last_breach: Option<BudgetBreach>,
    /// Execution policy for the multiplication kernels (see `par.rs`).
    /// [`Par::Seq`] by default; the sequential path is untouched by it.
    par: Par,
    /// Worker-side view of a fork-join coordinator's shared live-node
    /// budget (see [`SharedLiveBudget`]); `None` outside fork-join workers.
    shared_live: Option<SharedLiveBudget>,
    /// The qubit↔level permutation (see `reorder.rs`). Identity until a
    /// [`swap_levels`](Self::swap_levels) / [`sift_state`](Self::sift_state)
    /// changes it; every qubit-indexed accessor translates through it.
    pub(crate) var_order: crate::VarOrder,
}

/// Recursion steps between full governor checks. Keeps the per-step cost
/// of budget enforcement to a decrement-and-branch while bounding budget
/// overshoot to one interval's worth of allocations.
const CHARGE_INTERVAL: u32 = 1024;

impl DdManager {
    /// Creates a manager with the default configuration.
    pub fn new() -> Self {
        Self::with_config(DdConfig::default())
    }

    /// Creates a manager with an explicit configuration.
    pub fn with_config(config: DdConfig) -> Self {
        DdManager {
            complex: ComplexTable::with_tolerance_and_simd(config.tolerance, config.simd),
            vec_arena: Arena::new(),
            mat_arena: Arena::new(),
            vec_unique: UniqueTable::with_bits(config.unique_table_bits, (0, [VecEdge::ZERO; 2])),
            mat_unique: UniqueTable::with_bits(config.unique_table_bits, (0, [MatEdge::ZERO; 4])),
            compute: ComputeTables::new(config.compute_table_bits, config.cache_enabled),
            epoch: 1,
            stats: DdStats::default(),
            config,
            identity_cache: Vec::new(),
            apply_ops: crate::apply::ApplyOpRegistry::default(),
            deadline: None,
            cancel: None,
            charge_countdown: CHARGE_INTERVAL,
            governor_suspended: 0,
            governed: config.max_live_nodes.is_some() || config.max_table_bytes.is_some(),
            last_breach: None,
            par: Par::default(),
            shared_live: None,
            var_order: crate::VarOrder::identity(),
        }
    }

    /// The active qubit↔level permutation (identity unless a reorder ran).
    pub fn var_order(&self) -> &crate::VarOrder {
        &self.var_order
    }

    /// Installs a qubit↔level permutation directly, **without** rebuilding
    /// any diagram. Only sound on a manager whose vector diagrams were
    /// built under (or already denote) that order — snapshot restore and
    /// tests; everyone else goes through
    /// [`swap_levels`](Self::swap_levels) / [`sift_state`](Self::sift_state).
    pub fn set_var_order(&mut self, order: crate::VarOrder) {
        self.var_order = order;
    }

    /// Sets the execution policy for subsequent multiplication kernels.
    /// [`Par::Seq`] (the default) and any pool of parallelism 1 run the
    /// exact sequential code path.
    pub fn set_par(&mut self, par: Par) {
        self.par = par;
    }

    /// The active execution policy.
    pub fn par(&self) -> &Par {
        &self.par
    }

    /// The active configuration.
    pub fn config(&self) -> DdConfig {
        self.config
    }

    /// Cumulative operation statistics, including the per-table cache
    /// counters (collected live from the tables).
    pub fn stats(&self) -> DdStats {
        let cache = self.cache_stats();
        let totals = cache.compute_total();
        DdStats {
            compute_hits: totals.hits,
            compute_lookups: totals.lookups,
            cache,
            ..self.stats
        }
    }

    /// Per-table cache counters only.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            add_vec: self.compute.add_vec.stats,
            add_mat: self.compute.add_mat.stats,
            mat_vec: self.compute.mat_vec.stats,
            mat_mat: self.compute.mat_mat.stats,
            conj_transpose: self.compute.conj_transpose.stats,
            kron_vec: self.compute.kron_vec.stats,
            kron_mat: self.compute.kron_mat.stats,
            apply_gate: self.compute.apply_gate.stats,
            vec_unique: self.vec_unique.stats,
            mat_unique: self.mat_unique.stats,
            complex: self.complex.stats(),
        }
    }

    /// Live occupancy of the complex-weight interning table:
    /// `(occupied grid buckets, longest bucket)`. Reported by `--stats`
    /// alongside the [`ComplexTableStats`](ddsim_complex::ComplexTableStats)
    /// counters; computed on demand (O(buckets)), not kept hot.
    pub fn complex_table_occupancy(&self) -> (usize, usize) {
        (self.complex.bucket_count(), self.complex.max_bucket_len())
    }

    /// Merges a fork-join worker's statistics into this manager's, so a
    /// threaded run reports the combined work of every shard. Operation
    /// counters add directly; cache telemetry accumulates into the live
    /// tables' counters (`compute_hits` / `compute_lookups` are *derived*
    /// from those by [`stats`](Self::stats), so they are never added
    /// here — doing so would double-count).
    pub(crate) fn absorb_worker(&mut self, w: &DdStats) {
        self.stats.mat_vec_mults += w.mat_vec_mults;
        self.stats.mat_mat_mults += w.mat_mat_mults;
        self.stats.mult_recursions += w.mult_recursions;
        self.stats.add_recursions += w.add_recursions;
        self.stats.identity_skips += w.identity_skips;
        self.stats.specialized_applies += w.specialized_applies;
        self.stats.gc_runs += w.gc_runs;
        self.compute.add_vec.stats.accumulate(&w.cache.add_vec);
        self.compute.add_mat.stats.accumulate(&w.cache.add_mat);
        self.compute.mat_vec.stats.accumulate(&w.cache.mat_vec);
        self.compute.mat_mat.stats.accumulate(&w.cache.mat_mat);
        self.compute
            .conj_transpose
            .stats
            .accumulate(&w.cache.conj_transpose);
        self.compute.kron_vec.stats.accumulate(&w.cache.kron_vec);
        self.compute.kron_mat.stats.accumulate(&w.cache.kron_mat);
        self.compute
            .apply_gate
            .stats
            .accumulate(&w.cache.apply_gate);
        self.vec_unique.stats.accumulate(&w.cache.vec_unique);
        self.mat_unique.stats.accumulate(&w.cache.mat_unique);
        self.complex.stats_mut().accumulate(&w.cache.complex);
    }

    /// Resets the statistics counters (the diagrams are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DdStats::default();
        self.compute.reset_stats();
        self.vec_unique.stats = Default::default();
        self.mat_unique.stats = Default::default();
        *self.complex.stats_mut() = Default::default();
    }

    /// Interns a raw complex value, returning its canonical id.
    pub fn intern(&mut self, c: Complex) -> ComplexId {
        self.complex.lookup(c)
    }

    /// The complex value behind an interned id.
    pub fn complex_value(&self, id: ComplexId) -> Complex {
        self.complex.value(id)
    }

    /// Number of live (allocated, not freed) vector nodes.
    pub fn live_vec_nodes(&self) -> usize {
        self.vec_arena.live_count()
    }

    /// Number of live (allocated, not freed) matrix nodes.
    pub fn live_mat_nodes(&self) -> usize {
        self.mat_arena.live_count()
    }

    /// Total entries across all memoization caches (diagnostics).
    pub fn compute_table_entries(&self) -> usize {
        self.compute.len()
    }

    /// Total registered nodes across both unique tables (diagnostics).
    /// Unlike the live counts this includes nodes awaiting collection.
    pub fn unique_table_entries(&self) -> usize {
        self.vec_unique.len() + self.mat_unique.len()
    }

    /// Drops every memoized result (the unique tables and diagrams are
    /// untouched). Garbage collection does *not* do this — entries are
    /// invalidated per-node via epochs — so this is a benchmarking /
    /// diagnostics hook for forcing cold caches.
    pub fn clear_caches(&mut self) {
        self.compute.clear();
    }

    /// Number of distinct interned edge weights (diagnostics).
    pub fn distinct_weights(&self) -> usize {
        self.complex.len()
    }

    // ------------------------------------------------------------------
    // Resource governor
    // ------------------------------------------------------------------

    /// Sets (or clears) the wall-clock deadline. Operations in flight
    /// unwind with [`DdError::DeadlineExceeded`] at their next governor
    /// check once the instant passes.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        self.refresh_governed();
        // Force the next charge to do a full check so a freshly expired
        // deadline is observed promptly.
        self.charge_countdown = self.charge_countdown.min(1);
    }

    /// The active wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Registers (or clears) a cooperative [`CancelToken`]. Operations in
    /// flight unwind with [`DdError::Cancelled`] at their next governor
    /// check once the token latches.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
        self.refresh_governed();
        self.charge_countdown = self.charge_countdown.min(1);
    }

    /// A clone of the registered [`CancelToken`], if any (clones share the
    /// latch).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// Bytes currently held by the node arenas, unique tables, and compute
    /// tables — the quantity governed by
    /// [`DdConfig::max_table_bytes`]. O(1): computed from capacities.
    pub fn tracked_bytes(&self) -> usize {
        self.vec_arena.bytes()
            + self.mat_arena.bytes()
            + self.vec_unique.bytes()
            + self.mat_unique.bytes()
            + self.compute.bytes()
    }

    /// Whether any limit (budget, deadline, or cancel token) is configured.
    /// The public entry points in `ops.rs` / `apply.rs` read this **once
    /// per top-level operation** to pick the [`Governed`](crate::govern)
    /// or [`Ungoverned`](crate::govern) kernel instantiation.
    #[inline]
    pub(crate) fn is_governed(&self) -> bool {
        self.governed
    }

    /// One amortized governor step, called from every *governed* operation
    /// recursion: a decrement-and-branch on the hot path, with a full
    /// budget / deadline / cancellation check every [`CHARGE_INTERVAL`]
    /// steps. The ungoverned kernel instantiation compiles to code that
    /// never calls this (see `govern.rs`).
    #[inline]
    pub(crate) fn charge(&mut self) -> Result<(), DdError> {
        debug_assert!(
            self.governed,
            "charge reached through the ungoverned dispatch"
        );
        self.charge_countdown -= 1;
        if self.charge_countdown == 0 {
            self.charge_countdown = CHARGE_INTERVAL;
            self.charge_full()
        } else {
            Ok(())
        }
    }

    /// Records breach details and returns the matching error.
    fn breach(&mut self, resource: Resource, limit: u64, observed: u64) -> DdError {
        self.last_breach = Some(BudgetBreach {
            resource,
            limit,
            observed,
        });
        DdError::BudgetExceeded
    }

    /// Details of the most recent [`DdError::BudgetExceeded`] raised by
    /// this manager, if any.
    pub fn last_breach(&self) -> Option<BudgetBreach> {
        self.last_breach
    }

    /// Records breach details harvested from a fork-join worker, so the
    /// coordinator surfaces them exactly as a sequential trip would.
    pub(crate) fn record_breach(&mut self, breach: BudgetBreach) {
        self.last_breach = Some(breach);
    }

    /// Enrolls this (worker) manager in a fork-join coordinator's shared
    /// live-node budget: each full governor check flushes the worker's
    /// arena-count delta into `counter` and trips on the combined total.
    pub(crate) fn install_shared_live(&mut self, counter: Arc<AtomicUsize>, limit: usize) {
        self.shared_live = Some(SharedLiveBudget {
            counter,
            limit,
            flushed: 0,
        });
        self.refresh_governed();
        // First charge must do a full check: imports allocate nodes before
        // any recursion runs, and short workloads may never reach the
        // amortization interval.
        self.charge_countdown = self.charge_countdown.min(1);
    }

    /// Recomputes the [`governed`](field@Self::governed) fast-path flag;
    /// call after any change to budgets, deadline, or cancel token.
    pub(crate) fn refresh_governed(&mut self) {
        self.governed = self.cancel.is_some()
            || self.deadline.is_some()
            || self.config.max_live_nodes.is_some()
            || self.config.max_table_bytes.is_some()
            || self.shared_live.is_some();
    }

    /// The full governor check (cold path of [`charge`](Self::charge)).
    /// Kept out of line so the inlined `charge` stays a decrement-and-branch
    /// at its many recursion call sites.
    #[cold]
    #[inline(never)]
    fn charge_full(&mut self) -> Result<(), DdError> {
        if self.governor_suspended > 0 {
            return Ok(());
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(DdError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(DdError::DeadlineExceeded);
            }
        }
        if let Some(limit) = self.config.max_live_nodes {
            let live = self.vec_arena.live_count() + self.mat_arena.live_count();
            if live > limit {
                return Err(self.breach(Resource::LiveNodes, limit as u64, live as u64));
            }
        }
        if self.shared_live.is_some() {
            let local = self.vec_arena.live_count() + self.mat_arena.live_count();
            let (total, limit) = {
                let shared = self.shared_live.as_mut().expect("checked above");
                // Flush this worker's delta into the fleet-wide counter.
                // Relaxed suffices: the counter is a monotonic-ish tally,
                // not a synchronization point, and overshoot is already
                // bounded by the amortization interval.
                let total = if local >= shared.flushed {
                    shared
                        .counter
                        .fetch_add(local - shared.flushed, Ordering::Relaxed)
                        + (local - shared.flushed)
                } else {
                    shared
                        .counter
                        .fetch_sub(shared.flushed - local, Ordering::Relaxed)
                        - (shared.flushed - local)
                };
                shared.flushed = local;
                (total, shared.limit)
            };
            if total > limit {
                return Err(self.breach(Resource::LiveNodes, limit as u64, total as u64));
            }
        }
        if let Some(limit) = self.config.max_table_bytes {
            let bytes = self.tracked_bytes();
            if bytes > limit {
                return Err(self.breach(Resource::TableBytes, limit as u64, bytes as u64));
            }
        }
        Ok(())
    }

    /// An immediate interrupt check (cancellation and deadline), for
    /// callers that sit between operations (e.g. the engine's per-op
    /// loop) and want prompt observation without waiting out the
    /// amortization interval.
    ///
    /// Deliberately does NOT include the resource budgets: between ops
    /// the arena legitimately carries garbage that the next governed
    /// operation's degradation ladder would collect, so a budget check
    /// here would turn recoverable pressure into a hard
    /// `BudgetExceeded` with no rescue path (it did, before checkpointed
    /// runs under a live-node budget exposed it).
    pub fn check_interrupts(&mut self) -> Result<(), DdError> {
        if self.governor_suspended > 0 {
            return Ok(());
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(DdError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(DdError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Runs `f` with the governor suspended: `charge` cannot fail inside.
    ///
    /// Reserved for gate *construction* (`mat_controlled`'s internal
    /// matrix addition), whose work is O(qubits) per call and therefore
    /// cannot blow past a budget by more than a gate's worth of nodes —
    /// the next governed operation observes any excess.
    ///
    /// The suspension depth is restored by an RAII guard, so a panic
    /// inside `f` (reachable via the fuzz harness's `catch_unwind` replay
    /// of a reused manager) cannot leave the governor permanently
    /// suspended.
    pub(crate) fn with_governor_suspended<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<R, DdError>,
    ) -> R {
        struct Suspend<'a>(&'a mut DdManager);
        impl Drop for Suspend<'_> {
            fn drop(&mut self) {
                self.0.governor_suspended -= 1;
            }
        }
        self.governor_suspended += 1;
        let guard = Suspend(self);
        let result = f(&mut *guard.0);
        match result {
            Ok(r) => r,
            // Unreachable: charge_full returns Ok while suspended.
            Err(e) => unreachable!("governed failure while suspended: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Node access
    // ------------------------------------------------------------------

    pub(crate) fn vec_node(&self, id: NodeId) -> &VecNode {
        self.vec_arena.get(id)
    }

    pub(crate) fn mat_node(&self, id: NodeId) -> &MatNode {
        self.mat_arena.get(id)
    }

    /// The level of a vector edge (0 for terminal edges).
    pub fn vec_level(&self, e: VecEdge) -> Level {
        if e.node.is_terminal() {
            0
        } else {
            self.vec_node(e.node).level
        }
    }

    /// The level of a matrix edge (0 for terminal edges).
    pub fn mat_level(&self, e: MatEdge) -> Level {
        if e.node.is_terminal() {
            0
        } else {
            self.mat_node(e.node).level
        }
    }

    /// The two children of a vector edge's node, with the edge weight
    /// already multiplied in. A unit incoming weight (the common case after
    /// normalization) returns the stored edges untouched; otherwise both
    /// products go through the dispatched batched-multiply kernel.
    pub(crate) fn vec_children_weighted(&mut self, e: VecEdge) -> [VecEdge; 2] {
        debug_assert!(!e.node.is_terminal());
        let node = *self.vec_node(e.node);
        if e.weight.is_one() {
            return node.edges;
        }
        let mut out = node.edges;
        let weights = self.complex.mul2(e.weight, [out[0].weight, out[1].weight]);
        out[0].weight = weights[0];
        out[1].weight = weights[1];
        out
    }

    /// The four children of a matrix edge's node, with the edge weight
    /// already multiplied in. Same batching as
    /// [`vec_children_weighted`](Self::vec_children_weighted).
    pub(crate) fn mat_children_weighted(&mut self, e: MatEdge) -> [MatEdge; 4] {
        debug_assert!(!e.node.is_terminal());
        let node = *self.mat_node(e.node);
        if e.weight.is_one() {
            return node.edges;
        }
        let mut out = node.edges;
        let weights = self.complex.mul4(
            e.weight,
            [out[0].weight, out[1].weight, out[2].weight, out[3].weight],
        );
        for (child, w) in out.iter_mut().zip(weights) {
            child.weight = w;
        }
        out
    }

    // ------------------------------------------------------------------
    // Normalizing constructors
    // ------------------------------------------------------------------

    /// Creates (or reuses) the canonical vector node at `level` with the
    /// given children, returning a normalized edge to it.
    ///
    /// Normalization pushes the largest-magnitude child weight (ties broken
    /// by child order) onto the returned edge so that structurally equal
    /// sub-vectors (up to a scalar) share one node. Normalizing by the
    /// *largest* weight keeps all stored weights at magnitude ≤ 1, where the
    /// absolute unification tolerance is meaningful — normalizing by an
    /// arbitrary (e.g. leftmost) weight lets magnitudes drift across scales
    /// and the distinct-weight population explode.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a nonzero child is not exactly one level
    /// below `level` (QMDDs never skip levels).
    pub fn make_vec_node(&mut self, level: Level, mut edges: [VecEdge; 2]) -> VecEdge {
        debug_assert!(level >= 1);
        for e in &edges {
            debug_assert!(
                e.is_zero() || self.vec_level(*e) == level - 1,
                "child level mismatch when building vector node"
            );
        }
        // Zero children must be the canonical zero edge.
        for e in &mut edges {
            if e.weight.is_zero() {
                *e = VecEdge::ZERO;
            }
        }
        let top = match self.pivot_weight(edges.iter().map(|e| e.weight)) {
            Some(w) => w,
            None => return VecEdge::ZERO,
        };
        let weights = self.complex.div2([edges[0].weight, edges[1].weight], top);
        edges[0].weight = weights[0];
        edges[1].weight = weights[1];
        let key = (level, edges);
        let node = match self.vec_unique.get(&key) {
            Some(id) => id,
            None => {
                let id = self.vec_arena.alloc(VecNode { level, edges });
                self.vec_unique.insert(key, id);
                // Structural references to children.
                for e in &edges {
                    self.inc_ref_node_vec(e.node);
                }
                id
            }
        };
        VecEdge { node, weight: top }
    }

    /// Creates (or reuses) the canonical matrix node at `level` with the
    /// given quadrant children, returning a normalized edge to it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a nonzero child is not exactly one level
    /// below `level`.
    pub fn make_mat_node(&mut self, level: Level, mut edges: [MatEdge; 4]) -> MatEdge {
        debug_assert!(level >= 1);
        for e in &edges {
            debug_assert!(
                e.is_zero() || self.mat_level(*e) == level - 1,
                "child level mismatch when building matrix node"
            );
        }
        for e in &mut edges {
            if e.weight.is_zero() {
                *e = MatEdge::ZERO;
            }
        }
        let top = match self.pivot_weight(edges.iter().map(|e| e.weight)) {
            Some(w) => w,
            None => return MatEdge::ZERO,
        };
        let weights = self.complex.div4(
            [
                edges[0].weight,
                edges[1].weight,
                edges[2].weight,
                edges[3].weight,
            ],
            top,
        );
        for (e, w) in edges.iter_mut().zip(weights) {
            e.weight = w;
        }
        let key = (level, edges);
        let node = match self.mat_unique.get(&key) {
            Some(id) => id,
            None => {
                // Identity recognition happens once, here: after
                // normalization a (scaled) identity always has zero
                // off-diagonal quadrants and the *same* unit-weight edge to
                // an identity child in both diagonal slots, so the check is
                // purely structural and O(1).
                let identity = if self.config.fault == crate::FaultKind::DiagonalCountsAsIdentity {
                    // Injected fault: any block-diagonal node passes, so
                    // diagonal gates get skipped as identities downstream.
                    edges[1].is_zero() && edges[2].is_zero() && !edges[0].is_zero()
                } else {
                    edges[1].is_zero()
                        && edges[2].is_zero()
                        && edges[0] == edges[3]
                        && !edges[0].is_zero()
                        && edges[0].weight.is_one()
                        && self.is_identity_node(edges[0].node)
                };
                let id = self.mat_arena.alloc(MatNode {
                    level,
                    edges,
                    identity,
                });
                self.mat_unique.insert(key, id);
                for e in &edges {
                    self.inc_ref_node_mat(e.node);
                }
                id
            }
        };
        MatEdge { node, weight: top }
    }

    /// Whether `id` denotes an identity matrix node (the terminal counts:
    /// it is the 1x1 identity when reached with weight ONE). O(1) — reads
    /// the flag stamped at construction.
    #[inline]
    pub(crate) fn is_identity_node(&self, id: NodeId) -> bool {
        id.is_terminal() || self.mat_node(id).identity
    }

    /// Whether `e` is *exactly* the identity matrix of its level: a
    /// unit-weight edge to an identity node. O(1).
    ///
    /// Scaled identities (`c·I` with `c ≠ 1`) return `false`; the
    /// multiplication kernels check the node flag directly because the
    /// scalar factors out of products anyway.
    #[inline]
    pub fn is_identity(&self, e: MatEdge) -> bool {
        e.weight.is_one() && self.is_identity_node(e.node)
    }

    /// The normalization pivot: the first weight of strictly maximal
    /// magnitude (`None` if all are zero). Deterministic given interned
    /// child ids, which keeps node construction canonical.
    pub(crate) fn pivot_weight(
        &self,
        weights: impl Iterator<Item = ComplexId>,
    ) -> Option<ComplexId> {
        let mut best: Option<(ComplexId, f64)> = None;
        for w in weights {
            if w.is_zero() {
                continue;
            }
            let mag = self.complex.norm_sqr(w);
            match best {
                Some((_, best_mag)) if best_mag >= mag => {}
                _ => best = Some((w, mag)),
            }
        }
        best.map(|(w, _)| w)
    }

    // ------------------------------------------------------------------
    // Reference counting & garbage collection
    // ------------------------------------------------------------------

    fn inc_ref_node_vec(&mut self, id: NodeId) {
        if !id.is_terminal() {
            self.vec_arena.refcounts[id.index()] += 1;
        }
    }

    fn inc_ref_node_mat(&mut self, id: NodeId) {
        if !id.is_terminal() {
            self.mat_arena.refcounts[id.index()] += 1;
        }
    }

    /// Registers an external reference to a vector edge's root node,
    /// protecting the whole sub-diagram from garbage collection.
    pub fn inc_ref_vec(&mut self, e: VecEdge) {
        self.inc_ref_node_vec(e.node);
    }

    /// Releases an external reference previously taken with
    /// [`inc_ref_vec`](Self::inc_ref_vec).
    ///
    /// # Panics
    ///
    /// Panics if the node's reference count is already zero.
    pub fn dec_ref_vec(&mut self, e: VecEdge) {
        if !e.node.is_terminal() {
            let rc = &mut self.vec_arena.refcounts[e.node.index()];
            assert!(*rc > 0, "vector refcount underflow");
            *rc -= 1;
        }
    }

    /// Registers an external reference to a matrix edge's root node.
    pub fn inc_ref_mat(&mut self, e: MatEdge) {
        self.inc_ref_node_mat(e.node);
    }

    /// Releases an external reference previously taken with
    /// [`inc_ref_mat`](Self::inc_ref_mat).
    ///
    /// # Panics
    ///
    /// Panics if the node's reference count is already zero.
    pub fn dec_ref_mat(&mut self, e: MatEdge) {
        if !e.node.is_terminal() {
            let rc = &mut self.mat_arena.refcounts[e.node.index()];
            assert!(*rc > 0, "matrix refcount underflow");
            *rc -= 1;
        }
    }

    /// Runs garbage collection if the live node count exceeds the configured
    /// threshold. Returns whether a collection ran.
    ///
    /// Must only be called between operations: any edge not protected by an
    /// external reference (via [`inc_ref_vec`](Self::inc_ref_vec) /
    /// [`inc_ref_mat`](Self::inc_ref_mat)) is reclaimed.
    pub fn maybe_collect(&mut self) -> bool {
        if self.vec_arena.live_count() + self.mat_arena.live_count() > self.config.gc_threshold {
            self.collect_garbage();
            true
        } else {
            false
        }
    }

    /// Unconditionally reclaims every node whose reference count is zero
    /// (cascading) and rebuilds the unique tables over the survivors.
    ///
    /// The compute tables are **not** cleared: every slot freed here is
    /// stamped with the current epoch, which invalidates exactly the
    /// cached entries referencing it (entries carry their insertion
    /// epoch; validity is `free_epoch < entry_epoch`). Entries whose
    /// diagrams survive keep serving hits across the collection.
    pub fn collect_garbage(&mut self) {
        self.stats.gc_runs += 1;
        let free_epoch = self.epoch;

        // Sweep vector nodes to a fixpoint, remembering the freed keys.
        let mut freed_vec: Vec<(Level, [VecEdge; 2])> = Vec::new();
        let mut worklist: Vec<u32> = (0..self.vec_arena.slots.len() as u32)
            .filter(|&i| {
                !self.vec_arena.slots[i as usize].node.is_free()
                    && self.vec_arena.refcounts[i as usize] == 0
            })
            .collect();
        while let Some(idx) = worklist.pop() {
            let id = NodeId(idx);
            if self.vec_arena.slots[idx as usize].node.is_free()
                || self.vec_arena.refcounts[idx as usize] != 0
            {
                continue;
            }
            let node = self.vec_arena.free_slot(id, free_epoch);
            freed_vec.push((node.level, node.edges));
            for e in node.edges {
                if !e.node.is_terminal() {
                    let rc = &mut self.vec_arena.refcounts[e.node.index()];
                    *rc -= 1;
                    if *rc == 0 {
                        worklist.push(e.node.0);
                    }
                }
            }
        }

        // Sweep matrix nodes to a fixpoint.
        let mut freed_mat: Vec<(Level, [MatEdge; 4])> = Vec::new();
        let mut worklist: Vec<u32> = (0..self.mat_arena.slots.len() as u32)
            .filter(|&i| {
                !self.mat_arena.slots[i as usize].node.is_free()
                    && self.mat_arena.refcounts[i as usize] == 0
            })
            .collect();
        while let Some(idx) = worklist.pop() {
            let id = NodeId(idx);
            if self.mat_arena.slots[idx as usize].node.is_free()
                || self.mat_arena.refcounts[idx as usize] != 0
            {
                continue;
            }
            let node = self.mat_arena.free_slot(id, free_epoch);
            freed_mat.push((node.level, node.edges));
            for e in node.edges {
                if !e.node.is_terminal() {
                    let rc = &mut self.mat_arena.refcounts[e.node.index()];
                    *rc -= 1;
                    if *rc == 0 {
                        worklist.push(e.node.0);
                    }
                }
            }
        }

        // Entries written from here on must outrank this collection's
        // free stamps.
        self.epoch += 1;

        // A rebuild refills the whole slot array, so it only pays when it
        // can shrink the table back toward the configured floor; any other
        // sweep deletes exactly the freed keys (backward-shift, no
        // allocation — the steady-state GC-per-op path touches only the
        // freed keys' probe clusters instead of `O(capacity)` slots).
        let live_vec = self.vec_unique.len() - freed_vec.len();
        if freed_vec.len() * 4 >= self.vec_unique.len().max(1)
            && self.vec_unique.would_shrink(live_vec)
        {
            self.vec_unique
                .rebuild(self.vec_arena.live_entries(|n| (n.level, n.edges)));
        } else {
            for key in &freed_vec {
                self.vec_unique.remove(key);
            }
        }
        let live_mat = self.mat_unique.len() - freed_mat.len();
        if freed_mat.len() * 4 >= self.mat_unique.len().max(1)
            && self.mat_unique.would_shrink(live_mat)
        {
            self.mat_unique
                .rebuild(self.mat_arena.live_entries(|n| (n.level, n.edges)));
        } else {
            for key in &freed_mat {
                self.mat_unique.remove(key);
            }
        }
    }
}

impl Default for DdManager {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for DdManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DdManager")
            .field("live_vec_nodes", &self.live_vec_nodes())
            .field("live_mat_nodes", &self.live_mat_nodes())
            .field("distinct_weights", &self.complex.len())
            .field("epoch", &self.epoch)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Regression test for the suspension leak: a panic inside the closure
    /// used to skip the depth decrement, leaving a reused manager's
    /// governor permanently suspended (budgets silently stopped tripping).
    /// The RAII guard must restore the depth on unwind.
    #[test]
    fn governor_suspension_unwinds_on_panic_and_budgets_still_trip() {
        let config = DdConfig {
            max_live_nodes: Some(8),
            ..DdConfig::default()
        };
        let mut dd = DdManager::with_config(config);
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            dd.with_governor_suspended::<()>(|_| panic!("injected panic inside suspension"));
        }));
        assert!(unwound.is_err(), "the injected panic must propagate");
        assert_eq!(
            dd.governor_suspended, 0,
            "RAII guard must restore the suspension depth on unwind"
        );

        // The reused manager still enforces budgets: a 10-node basis state
        // exceeds the 8-node limit, and both the full charge and the
        // amortized in-operation check observe it. (`check_interrupts`
        // deliberately skips budgets — between-ops garbage is the
        // ladder's to collect, not an error.)
        let v = dd.vec_basis(10, 0);
        assert_eq!(dd.charge_full(), Err(DdError::BudgetExceeded));
        assert_eq!(dd.check_interrupts(), Ok(()));

        let s = Complex::SQRT2_INV;
        let h = dd.mat_single_qubit(10, 0, [[s, s], [s, -s]]);
        dd.charge_countdown = 1; // next charge performs the full check
        assert_eq!(dd.mat_vec_mul(h, v), Err(DdError::BudgetExceeded));
        let breach = dd.last_breach().expect("breach details recorded");
        assert_eq!(breach.resource, Resource::LiveNodes);
        assert_eq!(breach.limit, 8);
    }

    /// Non-panicking suspensions still balance (nesting included).
    #[test]
    fn governor_suspension_balances_when_nested() {
        let mut dd = DdManager::new();
        let out = dd.with_governor_suspended(|dd| {
            let inner = dd.with_governor_suspended(|dd| {
                assert_eq!(dd.governor_suspended, 2);
                Ok(21)
            });
            assert_eq!(dd.governor_suspended, 1);
            Ok(inner * 2)
        });
        assert_eq!(out, 42);
        assert_eq!(dd.governor_suspended, 0);
    }
}

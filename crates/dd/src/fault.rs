//! Test-only fault injection for validating the differential-testing
//! harness.
//!
//! The fuzzing oracle in `ddsim-fuzz` is only trustworthy if it can be
//! shown to *catch* engine defects. [`FaultKind`] lets the harness's
//! `--self-check` mode deliberately break one engine invariant at a time —
//! behind an explicit [`DdConfig`](crate::DdConfig) knob that defaults to
//! [`FaultKind::None`] — and then assert that the cross-checks flag the
//! resulting bit-drift. Each variant targets a distinct optimization added
//! in earlier PRs (lossy caches, identity short-circuits, specialized
//! apply kernels, measurement collapse), so the self-check exercises every
//! class of silent corruption the harness exists to detect.
//!
//! Nothing in the production paths ever sets a fault; the injection sites
//! are single branch comparisons against `None` on cold paths.

/// A deliberate, test-only engine defect.
///
/// `FaultKind::None` (the default) leaves the engine untouched. Every
/// other variant corrupts exactly one invariant so the fuzzing harness can
/// prove its oracles detect that class of bug.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// No fault: production behavior.
    #[default]
    None,
    /// The matrix-vector compute table keys on the matrix node only,
    /// dropping the vector operand — stale results are served whenever the
    /// same gate matrix meets a different state. Requires the cache to be
    /// enabled to manifest.
    MatVecCacheKeyDropsVector,
    /// Identity recognition accepts any block-diagonal node, so diagonal
    /// gates (Z, S, T, Rz, …) are skipped as if they were the identity in
    /// the multiplication kernels. Requires `identity_skip` to manifest.
    DiagonalCountsAsIdentity,
    /// [`DdManager::collapse`](crate::DdManager::collapse) skips the
    /// `1/√p` rescale after projection, leaving the post-measurement state
    /// un-normalized. Manifests only on measurement/reset-bearing
    /// circuits.
    CollapseSkipsRenormalize,
    /// The specialized apply kernels treat every control as positive,
    /// firing negative-controlled gates on the wrong basis half. Requires
    /// `identity_skip` (which routes gates through the specialized path)
    /// and a circuit with negative controls to manifest.
    NegativeControlsIgnored,
    /// The adjacent-level swap primitive skips folding the child's edge
    /// weight into the re-routed grandchildren, corrupting every amplitude
    /// whose two top-level branches carry different weights. Manifests only
    /// when a reorder actually runs (the fuzz lattice's `reorder` axis).
    ///
    /// This is the reorder analogue of the issue's "swap drops
    /// identity-flag recomputation": the vector swap touches no identity
    /// flags (those live on matrix nodes, which are never swapped — gates
    /// are rebuilt per order), so the fault targets the equivalent
    /// invariant the swap *does* maintain.
    SwapDropsChildWeight,
    /// The exact density-matrix path's depolarizing channel drops its
    /// `ZρZ` Kraus term, making the map non-trace-preserving (each faulty
    /// application loses `p/3` of the trace). Lives in `ddsim-core`'s
    /// `DensitySimulator` — this crate only carries the knob — and
    /// manifests only on exact noisy runs, where the trace oracle and the
    /// exact-vs-trajectory cross-check both flag it.
    KrausDropsChannel,
}

impl FaultKind {
    /// Every injectable fault (excluding `None`).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::MatVecCacheKeyDropsVector,
        FaultKind::DiagonalCountsAsIdentity,
        FaultKind::CollapseSkipsRenormalize,
        FaultKind::NegativeControlsIgnored,
        FaultKind::SwapDropsChildWeight,
        FaultKind::KrausDropsChannel,
    ];

    /// Stable lowercase label for CLI output and repro file names.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::MatVecCacheKeyDropsVector => "matvec-cache-key-drops-vector",
            FaultKind::DiagonalCountsAsIdentity => "diagonal-counts-as-identity",
            FaultKind::CollapseSkipsRenormalize => "collapse-skips-renormalize",
            FaultKind::NegativeControlsIgnored => "negative-controls-ignored",
            FaultKind::SwapDropsChildWeight => "swap-drops-child-weight",
            FaultKind::KrausDropsChannel => "kraus-drops-channel",
        }
    }

    /// Parses a label produced by [`label`](Self::label).
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "none" => Some(FaultKind::None),
            "matvec-cache-key-drops-vector" => Some(FaultKind::MatVecCacheKeyDropsVector),
            "diagonal-counts-as-identity" => Some(FaultKind::DiagonalCountsAsIdentity),
            "collapse-skips-renormalize" => Some(FaultKind::CollapseSkipsRenormalize),
            "negative-controls-ignored" => Some(FaultKind::NegativeControlsIgnored),
            "swap-drops-child-weight" => Some(FaultKind::SwapDropsChildWeight),
            "kraus-drops-channel" => Some(FaultKind::KrausDropsChannel),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        assert_eq!(FaultKind::parse("none"), Some(FaultKind::None));
        for f in FaultKind::ALL {
            assert_eq!(FaultKind::parse(f.label()), Some(f));
            assert_ne!(f, FaultKind::None);
        }
        assert_eq!(FaultKind::parse("bogus"), None);
    }
}

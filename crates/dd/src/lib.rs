//! Decision-diagram (QMDD-style) package for quantum-circuit simulation.
//!
//! This crate implements the data structure the paper's contribution runs
//! on: edge-weighted decision diagrams for state vectors (2 successors per
//! node) and unitary matrices (4 successors per node), with
//!
//! * hash-consing unique tables for maximal node sharing,
//! * canonical edge-weight normalization (largest-magnitude child weight
//!   pulled to the incoming edge, keeping stored weights at magnitude ≤ 1),
//! * memoized addition, matrix-vector, and matrix-matrix multiplication,
//! * direct DD construction from permutation functions and sparse matrices
//!   (the primitive behind the paper's *DD-construct* strategy),
//! * measurement, collapse, and sampling,
//! * reference-counting garbage collection,
//! * a dense array-based [`reference`](mod@crate::reference) backend for validation.
//!
//! # Examples
//!
//! Simulating the paper's Example 1 (Fig. 1):
//!
//! ```
//! use ddsim_complex::Complex;
//! use ddsim_dd::{Control, DdManager};
//!
//! let mut dd = DdManager::new();
//! let h = Complex::SQRT2_INV;
//! let state = dd.vec_basis(2, 0b01);
//! let h_gate = dd.mat_single_qubit(2, 0, [[h, h], [h, -h]]);
//! let cx = dd.mat_controlled(
//!     2,
//!     &[Control::pos(0)],
//!     1,
//!     [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
//! );
//! let state = dd.mat_vec_mul(h_gate, state)?;
//! let state = dd.mat_vec_mul(cx, state)?;
//! assert!(dd.vec_amplitude(state, 0b01).approx_eq(h, 1e-12));
//! assert!(dd.vec_amplitude(state, 0b10).approx_eq(h, 1e-12));
//! # Ok::<(), ddsim_dd::DdError>(())
//! ```

mod apply;
mod audit;
mod compute;
mod edge;
mod error;
mod export;
mod fault;
mod govern;
mod hash;
mod manager;
mod matrix;
mod measure;
mod ops;
mod par;
pub mod pool;
pub mod reference;
mod reorder;
pub mod snapshot;
mod unique;
mod vector;

pub use compute::{CacheStats, TableStats, UniqueTableStats};
pub use edge::{Level, MatEdge, NodeId, VecEdge};
pub use error::{BudgetBreach, CancelToken, DdError, Resource};
pub use fault::FaultKind;
pub use hash::{fx_hash, FxHashMap, FxHasher};
pub use manager::{DdConfig, DdManager, DdStats};
pub use matrix::{Control, ControlPolarity, Matrix2};
pub use par::Par;
pub use pool::ThreadPool;
pub use reorder::{ReorderStats, VarOrder};
pub use snapshot::{fnv1a, sync_parent_dir, Snapshot, SnapshotError};

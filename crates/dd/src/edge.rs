//! Edge and node-handle types shared by vector and matrix decision diagrams.

use ddsim_complex::ComplexId;

/// A level in the decision diagram.
///
/// Level `0` is the terminal; levels `1..=n` are qubit levels with level `n`
/// at the top (the paper's most significant qubit `q0`). A qubit index `q`
/// (0-based from the top) in an `n`-qubit system lives at level `n - q`.
pub type Level = u32;

/// Index of a node inside a [`DdManager`](crate::DdManager) arena.
///
/// The terminal node is the sentinel [`NodeId::TERMINAL`]; it is shared by
/// all diagrams and carries no storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The shared terminal node.
    pub const TERMINAL: NodeId = NodeId(u32::MAX);

    /// Whether this id denotes the terminal.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == NodeId::TERMINAL
    }

    /// Raw index into the arena (meaningless for the terminal).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A weighted edge of a *vector* decision diagram.
///
/// An edge at level `ℓ` denotes a vector of dimension `2^ℓ`: the edge weight
/// times the vector encoded by the target node. The zero vector is encoded as
/// a weight-zero edge to the terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VecEdge {
    /// Target node (terminal for scalars / the zero vector).
    pub node: NodeId,
    /// Interned edge weight.
    pub weight: ComplexId,
}

impl VecEdge {
    /// The canonical zero-vector edge.
    pub const ZERO: VecEdge = VecEdge {
        node: NodeId::TERMINAL,
        weight: ComplexId::ZERO,
    };

    /// A terminal edge with the given weight (a scalar / dimension-1 vector).
    #[inline]
    pub fn terminal(weight: ComplexId) -> Self {
        VecEdge {
            node: NodeId::TERMINAL,
            weight,
        }
    }

    /// Whether this is the zero vector.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }
}

/// A weighted edge of a *matrix* decision diagram.
///
/// An edge at level `ℓ` denotes a `2^ℓ × 2^ℓ` matrix. Children are ordered
/// row-major over (row bit, column bit): `[M00, M01, M10, M11]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatEdge {
    /// Target node (terminal for scalars / the zero matrix).
    pub node: NodeId,
    /// Interned edge weight.
    pub weight: ComplexId,
}

impl MatEdge {
    /// The canonical zero-matrix edge.
    pub const ZERO: MatEdge = MatEdge {
        node: NodeId::TERMINAL,
        weight: ComplexId::ZERO,
    };

    /// A terminal edge with the given weight (a scalar / 1x1 matrix).
    #[inline]
    pub fn terminal(weight: ComplexId) -> Self {
        MatEdge {
            node: NodeId::TERMINAL,
            weight,
        }
    }

    /// Whether this is the zero matrix.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }
}

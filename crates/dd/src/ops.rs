//! The DD operations at the heart of the paper: addition, matrix-vector
//! multiplication (Fig. 3/4), matrix-matrix multiplication, conjugate
//! transpose, and Kronecker products.
//!
//! All operations are memoized. Multiplication caches key on node-id pairs
//! only — edge weights factor out of products, so one entry serves every
//! weighted occurrence of the same node pair. The recursion counters in
//! [`DdStats`](crate::DdStats) give the machine-independent cost measure the
//! paper's Section III reasons about: MxM on two small gate DDs takes more
//! steps *per node* but touches far fewer nodes than MxV through a large
//! state DD.
//!
//! Every operation is *governable*: the public entry points dispatch once
//! per top-level call — never per recursion step — onto one of two
//! monomorphized kernel instantiations (see `govern.rs`). When a budget,
//! deadline, or cancel token is configured, the governed instantiation
//! charges the manager's amortized resource counter at each recursion step
//! and unwinds with a [`DdError`] once a limit trips; otherwise the
//! ungoverned instantiation runs infallible recursions with zero charge
//! branches. An unwound operation leaves no dangling state — partially
//! built nodes carry no external references (the next GC reclaims them)
//! and every compute-table entry already written is a complete, valid
//! result, so retrying after recovery is bitwise-safe. Both instantiations
//! build identical diagrams (property-tested below).

use ddsim_complex::ComplexId;

use crate::edge::{MatEdge, NodeId, VecEdge};
use crate::error::DdError;
use crate::govern::{gtry, Governance, Governed, Ungoverned};
use crate::manager::{Arena, ArenaNode, DdManager};

/// Whether a node referenced by a compute-table entry is still the node the
/// entry saw: its slot must not have been freed at or after the entry was
/// written (terminals are never freed). The free-epoch stamp lives inside
/// the arena slot (same cache line as the node, PR 7). See the epoch
/// scheme documented on [`DdManager::collect_garbage`].
#[inline]
pub(crate) fn live<N: ArenaNode>(arena: &Arena<N>, id: NodeId, entry_epoch: u32) -> bool {
    arena.is_live(id, entry_epoch)
}

impl DdManager {
    // ------------------------------------------------------------------
    // Addition
    // ------------------------------------------------------------------

    /// Adds two vector DDs of equal level.
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if the (nonzero) operands have different levels.
    pub fn add_vec(&mut self, a: VecEdge, b: VecEdge) -> Result<VecEdge, DdError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        assert_eq!(
            self.vec_level(a),
            self.vec_level(b),
            "adding vectors of different levels"
        );
        if self.is_governed() {
            self.add_vec_inner::<Governed>(a, b)
        } else {
            Ok(self.add_vec_inner::<Ungoverned>(a, b))
        }
    }

    fn add_vec_rec<G: Governance>(&mut self, a: VecEdge, b: VecEdge) -> G::Res<VecEdge> {
        self.stats.add_recursions += 1;
        gtry!(G::charge(self));
        if a.node.is_terminal() && b.node.is_terminal() {
            return G::wrap(VecEdge::terminal(self.complex.add(a.weight, b.weight)));
        }
        let level = self.vec_level(a);
        let ac = self.vec_children_weighted(a);
        let bc = self.vec_children_weighted(b);
        let lo = gtry!(self.add_vec_inner::<G>(ac[0], bc[0]));
        let hi = gtry!(self.add_vec_inner::<G>(ac[1], bc[1]));
        G::wrap(self.make_vec_node(level, [lo, hi]))
    }

    /// Like [`add_vec`](Self::add_vec) but without the level assertion
    /// (children of validated parents are already consistent).
    pub(crate) fn add_vec_inner<G: Governance>(
        &mut self,
        a: VecEdge,
        b: VecEdge,
    ) -> G::Res<VecEdge> {
        if a.is_zero() {
            return G::wrap(b);
        }
        if b.is_zero() {
            return G::wrap(a);
        }
        // Commutative: canonical operand order doubles the cache hit rate.
        let (a, b) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        // Factor the first operand's weight out so the cache key carries
        // only the weight *ratio*.
        let ratio = self.complex.div(b.weight, a.weight);
        let key = (
            VecEdge {
                node: a.node,
                weight: ComplexId::ONE,
            },
            VecEdge {
                node: b.node,
                weight: ratio,
            },
        );
        let fe = &self.vec_arena;
        if let Some(cached) = self.compute.add_vec.lookup(&key, |k, v, ep| {
            live(fe, k.0.node, ep) && live(fe, k.1.node, ep) && live(fe, v.node, ep)
        }) {
            return G::wrap(VecEdge {
                node: cached.node,
                weight: self.complex.mul(cached.weight, a.weight),
            });
        }
        let result = gtry!(self.add_vec_rec::<G>(key.0, key.1));
        let epoch = self.epoch;
        self.compute.add_vec.insert(key, result, epoch);
        G::wrap(VecEdge {
            node: result.node,
            weight: self.complex.mul(result.weight, a.weight),
        })
    }

    /// Adds two matrix DDs of equal level.
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if the (nonzero) operands have different levels.
    pub fn add_mat(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        assert_eq!(
            self.mat_level(a),
            self.mat_level(b),
            "adding matrices of different levels"
        );
        if self.is_governed() {
            self.add_mat_inner::<Governed>(a, b)
        } else {
            Ok(self.add_mat_inner::<Ungoverned>(a, b))
        }
    }

    pub(crate) fn add_mat_inner<G: Governance>(
        &mut self,
        a: MatEdge,
        b: MatEdge,
    ) -> G::Res<MatEdge> {
        if a.is_zero() {
            return G::wrap(b);
        }
        if b.is_zero() {
            return G::wrap(a);
        }
        let (a, b) = if (a.node, a.weight) <= (b.node, b.weight) {
            (a, b)
        } else {
            (b, a)
        };
        let ratio = self.complex.div(b.weight, a.weight);
        let key = (
            MatEdge {
                node: a.node,
                weight: ComplexId::ONE,
            },
            MatEdge {
                node: b.node,
                weight: ratio,
            },
        );
        let fe = &self.mat_arena;
        if let Some(cached) = self.compute.add_mat.lookup(&key, |k, v, ep| {
            live(fe, k.0.node, ep) && live(fe, k.1.node, ep) && live(fe, v.node, ep)
        }) {
            return G::wrap(MatEdge {
                node: cached.node,
                weight: self.complex.mul(cached.weight, a.weight),
            });
        }
        let result = gtry!(self.add_mat_rec::<G>(key.0, key.1));
        let epoch = self.epoch;
        self.compute.add_mat.insert(key, result, epoch);
        G::wrap(MatEdge {
            node: result.node,
            weight: self.complex.mul(result.weight, a.weight),
        })
    }

    fn add_mat_rec<G: Governance>(&mut self, a: MatEdge, b: MatEdge) -> G::Res<MatEdge> {
        self.stats.add_recursions += 1;
        gtry!(G::charge(self));
        if a.node.is_terminal() && b.node.is_terminal() {
            return G::wrap(MatEdge::terminal(self.complex.add(a.weight, b.weight)));
        }
        let level = self.mat_level(a);
        let ac = self.mat_children_weighted(a);
        let bc = self.mat_children_weighted(b);
        let mut children = [MatEdge::ZERO; 4];
        for i in 0..4 {
            children[i] = gtry!(self.add_mat_inner::<G>(ac[i], bc[i]));
        }
        G::wrap(self.make_mat_node(level, children))
    }

    // ------------------------------------------------------------------
    // Matrix-vector multiplication (the simulation step, Eq. 1)
    // ------------------------------------------------------------------

    /// Computes `M × v` (Fig. 3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if the (nonzero) operands have different levels.
    pub fn mat_vec_mul(&mut self, m: MatEdge, v: VecEdge) -> Result<VecEdge, DdError> {
        if m.is_zero() || v.is_zero() {
            return Ok(VecEdge::ZERO);
        }
        assert_eq!(
            self.mat_level(m),
            self.vec_level(v),
            "matrix and vector levels differ"
        );
        self.stats.mat_vec_mults += 1;
        // Parallel dispatch: under `Par::Threaded` with a real pool and a
        // large enough operand, fork the top quadrant products (see
        // `par.rs`). `Par::Seq` never takes this branch.
        if let Some(pool) = self.par_pool(self.mat_level(m)) {
            return self.mat_vec_mul_par(m, v, &pool);
        }
        self.mat_vec_mul_seq(m, v)
    }

    /// The strictly sequential `M × v` kernel: one `is_governed` read
    /// decides which monomorphized recursion runs the whole operation.
    /// Also the fallback for fork-join tasks too small to split.
    pub(crate) fn mat_vec_mul_seq(&mut self, m: MatEdge, v: VecEdge) -> Result<VecEdge, DdError> {
        if m.is_zero() || v.is_zero() {
            return Ok(VecEdge::ZERO);
        }
        if self.is_governed() {
            self.charge()?;
            self.mat_vec_inner::<Governed>(m, v)
        } else {
            Ok(self.mat_vec_inner::<Ungoverned>(m, v))
        }
    }

    fn mat_vec_inner<G: Governance>(&mut self, m: MatEdge, v: VecEdge) -> G::Res<VecEdge> {
        if m.is_zero() || v.is_zero() {
            return G::wrap(VecEdge::ZERO);
        }
        // Weights factor out: cache on the node pair with unit tops.
        let outer = self.complex.mul(m.weight, v.weight);
        if m.node.is_terminal() && v.node.is_terminal() {
            return G::wrap(VecEdge::terminal(outer));
        }
        // I·v = v: the scalar already lives in `outer`, so an identity
        // operand needs no recursion, no cache entry, and no new nodes.
        if self.config.identity_skip && self.is_identity_node(m.node) {
            self.stats.identity_skips += 1;
            return G::wrap(VecEdge {
                node: v.node,
                weight: outer,
            });
        }
        let faulted = self.config.fault == crate::FaultKind::MatVecCacheKeyDropsVector;
        let key = if faulted {
            // Injected fault: the vector operand is dropped from the cache
            // key, so a hit can return the product for a *different* state.
            (m.node, m.node)
        } else {
            (m.node, v.node)
        };
        let mfe = &self.mat_arena;
        let vfe = &self.vec_arena;
        let unit = if let Some(cached) = self.compute.mat_vec.lookup(&key, |k, v, ep| {
            let second_live = if faulted {
                live(mfe, k.1, ep)
            } else {
                live(vfe, k.1, ep)
            };
            live(mfe, k.0, ep) && second_live && live(vfe, v.node, ep)
        }) {
            cached
        } else {
            let computed = gtry!(self.mat_vec_rec::<G>(m.node, v.node));
            let epoch = self.epoch;
            self.compute.mat_vec.insert(key, computed, epoch);
            computed
        };
        G::wrap(VecEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, outer),
        })
    }

    fn mat_vec_rec<G: Governance>(
        &mut self,
        m_node: crate::edge::NodeId,
        v_node: crate::edge::NodeId,
    ) -> G::Res<VecEdge> {
        self.stats.mult_recursions += 1;
        gtry!(G::charge(self));
        let mn = *self.mat_node(m_node);
        let vn = *self.vec_node(v_node);
        debug_assert_eq!(mn.level, vn.level);
        let level = mn.level;
        // [M00 M01; M10 M11] × [v0; v1] = [M00·v0 + M01·v1; M10·v0 + M11·v1]
        // (the paper's Fig. 3, with the two intermediate vectors fused into
        // pairwise additions of the sub-products). A structural zero in the
        // matrix row elides its sub-product and the addition outright —
        // every level of a controlled gate above its target has two zero
        // children, so this is the common shape — and `x + 0 = x` keeps the
        // result bitwise identical to the unelided recursion.
        let lo = if mn.edges[1].is_zero() {
            gtry!(self.mat_vec_inner::<G>(mn.edges[0], vn.edges[0]))
        } else if mn.edges[0].is_zero() {
            gtry!(self.mat_vec_inner::<G>(mn.edges[1], vn.edges[1]))
        } else {
            let x0 = gtry!(self.mat_vec_inner::<G>(mn.edges[0], vn.edges[0]));
            let y0 = gtry!(self.mat_vec_inner::<G>(mn.edges[1], vn.edges[1]));
            gtry!(self.add_vec_inner::<G>(x0, y0))
        };
        let hi = if mn.edges[3].is_zero() {
            gtry!(self.mat_vec_inner::<G>(mn.edges[2], vn.edges[0]))
        } else if mn.edges[2].is_zero() {
            gtry!(self.mat_vec_inner::<G>(mn.edges[3], vn.edges[1]))
        } else {
            let x1 = gtry!(self.mat_vec_inner::<G>(mn.edges[2], vn.edges[0]));
            let y1 = gtry!(self.mat_vec_inner::<G>(mn.edges[3], vn.edges[1]));
            gtry!(self.add_vec_inner::<G>(x1, y1))
        };
        G::wrap(self.make_vec_node(level, [lo, hi]))
    }

    // ------------------------------------------------------------------
    // Matrix-matrix multiplication (combining operations, Eq. 2)
    // ------------------------------------------------------------------

    /// Computes the matrix product `A × B` (apply `B` first, then `A`).
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if the (nonzero) operands have different levels.
    pub fn mat_mat_mul(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        if a.is_zero() || b.is_zero() {
            return Ok(MatEdge::ZERO);
        }
        assert_eq!(
            self.mat_level(a),
            self.mat_level(b),
            "matrix operand levels differ"
        );
        self.stats.mat_mat_mults += 1;
        if let Some(pool) = self.par_pool(self.mat_level(a)) {
            return self.mat_mat_mul_par(a, b, &pool);
        }
        self.mat_mat_mul_seq(a, b)
    }

    /// The strictly sequential `A × B` kernel (see
    /// [`mat_vec_mul_seq`](Self::mat_vec_mul_seq)).
    pub(crate) fn mat_mat_mul_seq(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        if a.is_zero() || b.is_zero() {
            return Ok(MatEdge::ZERO);
        }
        if self.is_governed() {
            self.charge()?;
            self.mat_mat_inner::<Governed>(a, b)
        } else {
            Ok(self.mat_mat_inner::<Ungoverned>(a, b))
        }
    }

    fn mat_mat_inner<G: Governance>(&mut self, a: MatEdge, b: MatEdge) -> G::Res<MatEdge> {
        if a.is_zero() || b.is_zero() {
            return G::wrap(MatEdge::ZERO);
        }
        let outer = self.complex.mul(a.weight, b.weight);
        if a.node.is_terminal() && b.node.is_terminal() {
            return G::wrap(MatEdge::terminal(outer));
        }
        // I·B = B and A·I = A, with the scalars already folded into `outer`.
        if self.config.identity_skip {
            if self.is_identity_node(a.node) {
                self.stats.identity_skips += 1;
                return G::wrap(MatEdge {
                    node: b.node,
                    weight: outer,
                });
            }
            if self.is_identity_node(b.node) {
                self.stats.identity_skips += 1;
                return G::wrap(MatEdge {
                    node: a.node,
                    weight: outer,
                });
            }
        }
        let key = (a.node, b.node);
        let fe = &self.mat_arena;
        let unit = if let Some(cached) = self.compute.mat_mat.lookup(&key, |k, v, ep| {
            live(fe, k.0, ep) && live(fe, k.1, ep) && live(fe, v.node, ep)
        }) {
            cached
        } else {
            let computed = gtry!(self.mat_mat_rec::<G>(a.node, b.node));
            let epoch = self.epoch;
            self.compute.mat_mat.insert(key, computed, epoch);
            computed
        };
        G::wrap(MatEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, outer),
        })
    }

    fn mat_mat_rec<G: Governance>(
        &mut self,
        a_node: crate::edge::NodeId,
        b_node: crate::edge::NodeId,
    ) -> G::Res<MatEdge> {
        self.stats.mult_recursions += 1;
        gtry!(G::charge(self));
        let an = *self.mat_node(a_node);
        let bn = *self.mat_node(b_node);
        debug_assert_eq!(an.level, bn.level);
        let level = an.level;
        let mut children = [MatEdge::ZERO; 4];
        for r in 0..2usize {
            for c in 0..2usize {
                // (A×B)_{rc} = A_{r0}·B_{0c} + A_{r1}·B_{1c}, with the same
                // structural-zero elision as the matrix-vector recursion
                // (gate DDs are mostly zeros, and `x + 0 = x` bitwise).
                children[2 * r + c] = if an.edges[2 * r + 1].is_zero() || bn.edges[2 + c].is_zero()
                {
                    gtry!(self.mat_mat_inner::<G>(an.edges[2 * r], bn.edges[c]))
                } else if an.edges[2 * r].is_zero() || bn.edges[c].is_zero() {
                    gtry!(self.mat_mat_inner::<G>(an.edges[2 * r + 1], bn.edges[2 + c]))
                } else {
                    let p0 = gtry!(self.mat_mat_inner::<G>(an.edges[2 * r], bn.edges[c]));
                    let p1 = gtry!(self.mat_mat_inner::<G>(an.edges[2 * r + 1], bn.edges[2 + c]));
                    gtry!(self.add_mat_inner::<G>(p0, p1))
                };
            }
        }
        G::wrap(self.make_mat_node(level, children))
    }

    // ------------------------------------------------------------------
    // Conjugate transpose
    // ------------------------------------------------------------------

    /// Computes the conjugate transpose `M†` (e.g. for inverse circuits and
    /// unitarity checks).
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    pub fn mat_conj_transpose(&mut self, m: MatEdge) -> Result<MatEdge, DdError> {
        if self.is_governed() {
            self.conj_transpose_inner::<Governed>(m)
        } else {
            Ok(self.conj_transpose_inner::<Ungoverned>(m))
        }
    }

    fn conj_transpose_inner<G: Governance>(&mut self, m: MatEdge) -> G::Res<MatEdge> {
        if m.is_zero() {
            return G::wrap(MatEdge::ZERO);
        }
        let w = self.complex.conj(m.weight);
        if m.node.is_terminal() {
            return G::wrap(MatEdge::terminal(w));
        }
        // The identity is Hermitian: I† = I, only the weight conjugates.
        if self.config.identity_skip && self.is_identity_node(m.node) {
            self.stats.identity_skips += 1;
            return G::wrap(MatEdge {
                node: m.node,
                weight: w,
            });
        }
        gtry!(G::charge(self));
        let fe = &self.mat_arena;
        let unit = if let Some(cached) = self
            .compute
            .conj_transpose
            .lookup(&m.node, |k, v, ep| live(fe, *k, ep) && live(fe, v.node, ep))
        {
            cached
        } else {
            let node = *self.mat_node(m.node);
            let children = [
                gtry!(self.conj_transpose_inner::<G>(node.edges[0])),
                // Transpose swaps the off-diagonal quadrants.
                gtry!(self.conj_transpose_inner::<G>(node.edges[2])),
                gtry!(self.conj_transpose_inner::<G>(node.edges[1])),
                gtry!(self.conj_transpose_inner::<G>(node.edges[3])),
            ];
            let computed = self.make_mat_node(node.level, children);
            let epoch = self.epoch;
            self.compute.conj_transpose.insert(m.node, computed, epoch);
            computed
        };
        G::wrap(MatEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, w),
        })
    }

    // ------------------------------------------------------------------
    // Kronecker products
    // ------------------------------------------------------------------

    /// Computes `a ⊗ b` for vectors (`a` supplies the upper levels).
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    pub fn kron_vec(&mut self, a: VecEdge, b: VecEdge) -> Result<VecEdge, DdError> {
        if self.is_governed() {
            self.kron_vec_inner::<Governed>(a, b)
        } else {
            Ok(self.kron_vec_inner::<Ungoverned>(a, b))
        }
    }

    fn kron_vec_inner<G: Governance>(&mut self, a: VecEdge, b: VecEdge) -> G::Res<VecEdge> {
        if a.is_zero() || b.is_zero() {
            return G::wrap(VecEdge::ZERO);
        }
        let outer = a.weight;
        let unit = gtry!(self.kron_vec_unit::<G>(
            VecEdge {
                node: a.node,
                weight: ComplexId::ONE,
            },
            b,
        ));
        G::wrap(VecEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, outer),
        })
    }

    fn kron_vec_unit<G: Governance>(&mut self, a: VecEdge, b: VecEdge) -> G::Res<VecEdge> {
        if a.node.is_terminal() {
            return G::wrap(VecEdge {
                node: b.node,
                weight: self.complex.mul(a.weight, b.weight),
            });
        }
        gtry!(G::charge(self));
        let key = (a.node, b);
        let fe = &self.vec_arena;
        if let Some(cached) = self.compute.kron_vec.lookup(&key, |k, v, ep| {
            live(fe, k.0, ep) && live(fe, k.1.node, ep) && live(fe, v.node, ep)
        }) {
            return G::wrap(cached);
        }
        let node = *self.vec_node(a.node);
        let b_level = self.vec_level(b);
        let lo = gtry!(self.kron_vec_unit::<G>(node.edges[0], b));
        let hi = gtry!(self.kron_vec_unit::<G>(node.edges[1], b));
        let result = self.make_vec_node(node.level + b_level, [lo, hi]);
        let epoch = self.epoch;
        self.compute.kron_vec.insert(key, result, epoch);
        G::wrap(result)
    }

    /// Computes `a ⊗ b` for matrices (`a` supplies the upper levels) — the
    /// operation behind the paper's `H ⊗ I` example in Section II-A.
    ///
    /// # Errors
    ///
    /// Returns a [`DdError`] if a resource budget, the deadline, or a
    /// cancellation trips mid-operation; the manager stays consistent.
    pub fn kron_mat(&mut self, a: MatEdge, b: MatEdge) -> Result<MatEdge, DdError> {
        if self.is_governed() {
            self.kron_mat_inner::<Governed>(a, b)
        } else {
            Ok(self.kron_mat_inner::<Ungoverned>(a, b))
        }
    }

    fn kron_mat_inner<G: Governance>(&mut self, a: MatEdge, b: MatEdge) -> G::Res<MatEdge> {
        if a.is_zero() || b.is_zero() {
            return G::wrap(MatEdge::ZERO);
        }
        // I(k) ⊗ I(l) = I(k+l): serve the canonical identity from the
        // per-level cache instead of recursing (hash-consing makes the
        // result identical to what the recursion would build).
        if self.config.identity_skip
            && self.is_identity_node(a.node)
            && self.is_identity_node(b.node)
        {
            self.stats.identity_skips += 1;
            let levels = self.mat_level(a) + self.mat_level(b);
            let id = self.mat_identity(levels);
            let weight = self.complex.mul(a.weight, b.weight);
            return G::wrap(MatEdge {
                node: id.node,
                weight,
            });
        }
        let outer = a.weight;
        let unit = gtry!(self.kron_mat_unit::<G>(
            MatEdge {
                node: a.node,
                weight: ComplexId::ONE,
            },
            b,
        ));
        G::wrap(MatEdge {
            node: unit.node,
            weight: self.complex.mul(unit.weight, outer),
        })
    }

    fn kron_mat_unit<G: Governance>(&mut self, a: MatEdge, b: MatEdge) -> G::Res<MatEdge> {
        if a.node.is_terminal() {
            return G::wrap(MatEdge {
                node: b.node,
                weight: self.complex.mul(a.weight, b.weight),
            });
        }
        gtry!(G::charge(self));
        let key = (a.node, b);
        let fe = &self.mat_arena;
        if let Some(cached) = self.compute.kron_mat.lookup(&key, |k, v, ep| {
            live(fe, k.0, ep) && live(fe, k.1.node, ep) && live(fe, v.node, ep)
        }) {
            return G::wrap(cached);
        }
        let node = *self.mat_node(a.node);
        let b_level = self.mat_level(b);
        let mut children = [MatEdge::ZERO; 4];
        for (child, &edge) in children.iter_mut().zip(node.edges.iter()) {
            *child = gtry!(self.kron_mat_unit::<G>(edge, b));
        }
        let result = self.make_mat_node(node.level + b_level, children);
        let epoch = self.epoch;
        self.compute.kron_mat.insert(key, result, epoch);
        G::wrap(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Resource;
    use crate::manager::DdConfig;
    use crate::matrix::{Control, Matrix2};
    use ddsim_complex::Complex;

    fn h_gate() -> Matrix2 {
        let h = Complex::SQRT2_INV;
        [[h, h], [h, -h]]
    }

    fn x_gate() -> Matrix2 {
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
    }

    /// Dense reference multiplication for validation.
    fn dense_mat_vec(m: &[Vec<Complex>], v: &[Complex]) -> Vec<Complex> {
        m.iter()
            .map(|row| {
                row.iter()
                    .zip(v.iter())
                    .fold(Complex::ZERO, |acc, (a, b)| acc + *a * *b)
            })
            .collect()
    }

    fn dense_mat_mat(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
        let n = a.len();
        (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| (0..n).fold(Complex::ZERO, |acc, k| acc + a[r][k] * b[k][c]))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn paper_example1_bell_state() {
        // Fig. 1: |ψ⟩ = |01⟩, H on q0, CX(q0→q1) ⇒ (|01⟩ + |10⟩)/√2.
        let mut dd = DdManager::new();
        let v0 = dd.vec_basis(2, 0b01);
        let h = dd.mat_single_qubit(2, 0, h_gate());
        let cx = dd.mat_controlled(2, &[Control::pos(0)], 1, x_gate());
        let v1 = dd.mat_vec_mul(h, v0).unwrap();
        let v2 = dd.mat_vec_mul(cx, v1).unwrap();
        let amps = dd.vec_to_amplitudes(v2);
        let s = Complex::SQRT2_INV;
        assert!(amps[0b00].approx_eq(Complex::ZERO, 1e-12));
        assert!(amps[0b01].approx_eq(s, 1e-12));
        assert!(amps[0b10].approx_eq(s, 1e-12));
        assert!(amps[0b11].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn combining_matches_sequential_paper_eq1_vs_eq2() {
        // (M2 × M1) × v == M2 × (M1 × v) — the paper's core identity.
        let mut dd = DdManager::new();
        let v0 = dd.vec_basis(3, 0b010);
        let m1 = dd.mat_single_qubit(3, 0, h_gate());
        let m2 = dd.mat_controlled(3, &[Control::pos(0)], 2, x_gate());

        let seq = {
            let t = dd.mat_vec_mul(m1, v0).unwrap();
            dd.mat_vec_mul(m2, t).unwrap()
        };
        let combined = {
            let p = dd.mat_mat_mul(m2, m1).unwrap();
            dd.mat_vec_mul(p, v0).unwrap()
        };
        // Canonicity: identical states are identical edges.
        assert_eq!(seq, combined);
    }

    #[test]
    fn mat_vec_matches_dense_reference() {
        let mut dd = DdManager::new();
        let rows = vec![
            vec![
                Complex::new(0.5, 0.1),
                Complex::ZERO,
                Complex::I,
                Complex::real(0.2),
            ],
            vec![
                Complex::ZERO,
                Complex::real(-1.0),
                Complex::ZERO,
                Complex::new(0.1, 0.1),
            ],
            vec![
                Complex::real(0.3),
                Complex::ZERO,
                Complex::real(0.5),
                Complex::ZERO,
            ],
            vec![
                Complex::new(0.5, 0.5),
                Complex::ZERO,
                Complex::ZERO,
                Complex::real(2.0),
            ],
        ];
        let v = vec![
            Complex::new(0.1, 0.2),
            Complex::real(0.4),
            Complex::new(-0.3, 0.1),
            Complex::I,
        ];
        let m_dd = dd.mat_from_dense(&rows);
        let v_dd = dd.vec_from_amplitudes(&v);
        let r_dd = dd.mat_vec_mul(m_dd, v_dd).unwrap();
        let got = dd.vec_to_amplitudes(r_dd);
        let want = dense_mat_vec(&rows, &v);
        for i in 0..4 {
            assert!(got[i].approx_eq(want[i], 1e-9), "index {i}");
        }
    }

    #[test]
    fn mat_mat_matches_dense_reference() {
        let mut dd = DdManager::new();
        let a = vec![
            vec![Complex::real(1.0), Complex::I, Complex::ZERO, Complex::ZERO],
            vec![
                Complex::ZERO,
                Complex::real(0.5),
                Complex::real(0.5),
                Complex::ZERO,
            ],
            vec![
                Complex::new(0.2, -0.1),
                Complex::ZERO,
                Complex::ONE,
                Complex::ZERO,
            ],
            vec![
                Complex::ZERO,
                Complex::ZERO,
                Complex::ZERO,
                Complex::new(0.0, -1.0),
            ],
        ];
        let b = vec![
            vec![
                Complex::real(0.3),
                Complex::ZERO,
                Complex::ZERO,
                Complex::ONE,
            ],
            vec![Complex::ZERO, Complex::I, Complex::ZERO, Complex::ZERO],
            vec![
                Complex::ONE,
                Complex::ZERO,
                Complex::real(-0.5),
                Complex::ZERO,
            ],
            vec![
                Complex::ZERO,
                Complex::real(0.7),
                Complex::ZERO,
                Complex::real(0.2),
            ],
        ];
        let a_dd = dd.mat_from_dense(&a);
        let b_dd = dd.mat_from_dense(&b);
        let p_dd = dd.mat_mat_mul(a_dd, b_dd).unwrap();
        let got = dd.mat_to_dense(p_dd);
        let want = dense_mat_mat(&a, &b);
        for r in 0..4 {
            for c in 0..4 {
                assert!(got[r][c].approx_eq(want[r][c], 1e-9), "({r},{c})");
            }
        }
    }

    #[test]
    fn addition_matches_dense_reference() {
        let mut dd = DdManager::new();
        let a = vec![Complex::real(0.25); 8];
        let mut b = vec![Complex::ZERO; 8];
        b[3] = Complex::new(0.5, -0.5);
        b[6] = Complex::I;
        let a_dd = dd.vec_from_amplitudes(&a);
        let b_dd = dd.vec_from_amplitudes(&b);
        let s_dd = dd.add_vec(a_dd, b_dd).unwrap();
        let got = dd.vec_to_amplitudes(s_dd);
        for i in 0..8 {
            assert!(got[i].approx_eq(a[i] + b[i], 1e-10), "index {i}");
        }
    }

    #[test]
    fn addition_is_commutative_on_dds() {
        let mut dd = DdManager::new();
        let a = dd.vec_basis(3, 1);
        let b = dd.vec_basis(3, 5);
        let ab = dd.add_vec(a, b).unwrap();
        let ba = dd.add_vec(b, a).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let mut dd = DdManager::new();
        let id = dd.mat_identity(4);
        let h = dd.mat_single_qubit(4, 2, h_gate());
        let left = dd.mat_mat_mul(id, h).unwrap();
        let right = dd.mat_mat_mul(h, id).unwrap();
        assert_eq!(left, h);
        assert_eq!(right, h);

        let v = dd.vec_basis(4, 7);
        let iv = dd.mat_vec_mul(id, v).unwrap();
        assert_eq!(iv, v);
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let mut dd = DdManager::new();
        let h = dd.mat_single_qubit(3, 1, h_gate());
        let hh = dd.mat_mat_mul(h, h).unwrap();
        let id = dd.mat_identity(3);
        assert_eq!(hh, id);
    }

    #[test]
    fn unitarity_u_dagger_u_is_identity() {
        let mut dd = DdManager::new();
        let cx = dd.mat_controlled(3, &[Control::pos(2)], 0, x_gate());
        let h = dd.mat_single_qubit(3, 1, h_gate());
        let u = dd.mat_mat_mul(cx, h).unwrap();
        let udag = dd.mat_conj_transpose(u).unwrap();
        let product = dd.mat_mat_mul(udag, u).unwrap();
        let id = dd.mat_identity(3);
        assert_eq!(product, id);
    }

    #[test]
    fn conj_transpose_is_involution() {
        let mut dd = DdManager::new();
        let s_gate: Matrix2 = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]];
        let m = dd.mat_single_qubit(2, 0, s_gate);
        let back = {
            let t = dd.mat_conj_transpose(m).unwrap();
            dd.mat_conj_transpose(t).unwrap()
        };
        assert_eq!(back, m);
    }

    #[test]
    fn kron_matches_paper_h_tensor_i() {
        // Section II-A: H ⊗ I₂ as the 4x4 matrix in Example 1.
        let mut dd = DdManager::new();
        let h1 = dd.mat_single_qubit(1, 0, h_gate());
        let i1 = dd.mat_identity(1);
        let hi = dd.kron_mat(h1, i1).unwrap();
        let h_top = dd.mat_single_qubit(2, 0, h_gate());
        assert_eq!(hi, h_top);
    }

    #[test]
    fn kron_vec_composes_basis_states() {
        let mut dd = DdManager::new();
        let a = dd.vec_basis(2, 0b10);
        let b = dd.vec_basis(3, 0b011);
        let ab = dd.kron_vec(a, b).unwrap();
        let direct = dd.vec_basis(5, 0b10011);
        assert_eq!(ab, direct);
    }

    #[test]
    fn multiplication_stats_are_counted() {
        let mut dd = DdManager::new();
        dd.reset_stats();
        let v = dd.vec_basis(2, 0);
        let h = dd.mat_single_qubit(2, 0, h_gate());
        let _ = dd.mat_vec_mul(h, v).unwrap();
        let _ = dd.mat_mat_mul(h, h).unwrap();
        let stats = dd.stats();
        assert_eq!(stats.mat_vec_mults, 1);
        assert_eq!(stats.mat_mat_mults, 1);
        assert!(stats.mult_recursions > 0);
    }

    #[test]
    fn compute_cache_hits_on_repetition() {
        let mut dd = DdManager::new();
        let v = dd.vec_basis(6, 0);
        let h = dd.mat_single_qubit(6, 3, h_gate());
        let r1 = dd.mat_vec_mul(h, v).unwrap();
        let before = dd.stats().mult_recursions;
        let r2 = dd.mat_vec_mul(h, v).unwrap();
        let after = dd.stats().mult_recursions;
        assert_eq!(r1, r2);
        assert_eq!(before, after, "second multiply must be fully cached");
    }

    #[test]
    fn gc_reclaims_unreferenced_nodes() {
        let mut dd = DdManager::new();
        let keep = dd.vec_basis(5, 3);
        dd.inc_ref_vec(keep);
        // Create garbage.
        for i in 0..20 {
            let _ = dd.vec_basis(5, i);
        }
        let before = dd.live_vec_nodes();
        dd.collect_garbage();
        let after = dd.live_vec_nodes();
        assert!(after < before);
        // The protected state is intact.
        assert!((dd.vec_norm_sqr(keep) - 1.0).abs() < 1e-12);
        assert!(dd.vec_amplitude(keep, 3).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn gc_then_rebuild_is_consistent() {
        let mut dd = DdManager::new();
        let a = dd.vec_basis(4, 9);
        dd.inc_ref_vec(a);
        dd.collect_garbage();
        let b = dd.vec_basis(4, 9);
        assert_eq!(a, b, "rebuilding after GC must reuse the protected nodes");
    }

    // ------------------------------------------------------------------
    // Governor
    // ------------------------------------------------------------------

    /// One round of budget-tripping work: H everywhere, then a ladder of
    /// round-dependent controlled phases. Varying `round` defeats the
    /// compute caches and keeps allocating fresh nodes and weights, so the
    /// live-node count and table footprint both keep climbing.
    fn budget_workload(dd: &mut DdManager, n: u32, round: u32) -> Result<VecEdge, DdError> {
        let mut v = dd.vec_basis(n, 0);
        for q in 0..n {
            let h = dd.mat_single_qubit(n, q, h_gate());
            v = dd.mat_vec_mul(h, v)?;
        }
        for q in 1..n {
            let theta = 0.37 * (q as f64 + 1.0) + 1e-3 * round as f64;
            let p: Matrix2 = [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::from_polar(1.0, theta)],
            ];
            let g = dd.mat_controlled(n, &[Control::pos(q - 1)], q, p);
            v = dd.mat_vec_mul(g, v)?;
        }
        Ok(v)
    }

    /// Repeats the workload until the governor trips (or gives up).
    fn run_until_err(dd: &mut DdManager, n: u32, rounds: u32) -> Result<VecEdge, DdError> {
        let mut result = Ok(VecEdge::ZERO);
        for round in 0..rounds {
            result = budget_workload(dd, n, round);
            if result.is_err() {
                break;
            }
        }
        result
    }

    /// One pass over the full kernel surface: generic and specialized
    /// multiplication, addition, Kronecker products, conjugate transpose,
    /// plus a mid-stream garbage collection. Used to compare the two
    /// governance instantiations bit for bit.
    fn full_surface_workload(dd: &mut DdManager) -> (VecEdge, MatEdge) {
        let n = 6;
        let mut v = dd.vec_basis(n, 0b010110);
        for q in 0..n {
            let h = dd.mat_single_qubit(n, q, h_gate());
            v = dd.mat_vec_mul(h, v).unwrap();
        }
        for q in 1..n {
            let theta = 0.41 * q as f64;
            let p: Matrix2 = [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, Complex::from_polar(1.0, theta)],
            ];
            let g = dd.mat_controlled(n, &[Control::pos(q - 1)], q, p);
            v = dd.mat_vec_mul(g, v).unwrap();
        }
        v = dd.apply_single_qubit(2, h_gate(), v).unwrap();
        v = dd
            .apply_controlled(&[Control::pos(0), Control::neg(4)], 3, x_gate(), v)
            .unwrap();
        dd.inc_ref_vec(v);
        dd.collect_garbage();
        dd.dec_ref_vec(v);
        let b = dd.vec_basis(n, 0b000111);
        let sum = dd.add_vec(v, b).unwrap();
        let a3 = dd.vec_basis(3, 0b101);
        let k = dd.kron_vec(a3, a3).unwrap();
        let v2 = dd.add_vec(sum, k).unwrap();
        let h = dd.mat_single_qubit(n, 1, h_gate());
        let cx = dd.mat_controlled(n, &[Control::pos(4)], 2, x_gate());
        let prod = dd.mat_mat_mul(cx, h).unwrap();
        let dag = dd.mat_conj_transpose(prod).unwrap();
        let h3 = dd.mat_single_qubit(3, 0, h_gate());
        let km = dd.kron_mat(h3, h3).unwrap();
        let m = dd.mat_mat_mul(dag, km).unwrap();
        let v3 = dd.mat_vec_mul(m, v2).unwrap();
        (v3, m)
    }

    /// Tentpole property: the governed and ungoverned instantiations build
    /// byte-identical diagrams. With deterministic arena allocation, the
    /// same operation replay must yield the same edges (node ids *and*
    /// interned weight ids), the same statistics, and the same live node
    /// counts — the governance policy only decides whether the governor is
    /// consulted, never what gets built.
    #[test]
    fn governed_and_ungoverned_instantiations_are_bitwise_identical() {
        let mut ungoverned = DdManager::new();
        // A budget far above anything the workload allocates: the manager
        // dispatches every operation onto the governed instantiation, but
        // no limit ever trips.
        let mut governed = DdManager::with_config(DdConfig {
            max_live_nodes: Some(usize::MAX),
            ..DdConfig::default()
        });
        assert!(!ungoverned.is_governed());
        assert!(governed.is_governed());

        let (vu, mu) = full_surface_workload(&mut ungoverned);
        let (vg, mg) = full_surface_workload(&mut governed);
        assert_eq!(vu, vg, "state edges must be bitwise identical");
        assert_eq!(mu, mg, "matrix edges must be bitwise identical");
        assert_eq!(ungoverned.stats(), governed.stats());
        assert_eq!(ungoverned.live_vec_nodes(), governed.live_vec_nodes());
        assert_eq!(ungoverned.live_mat_nodes(), governed.live_mat_nodes());
        assert_eq!(ungoverned.distinct_weights(), governed.distinct_weights());

        let au = ungoverned.vec_to_amplitudes(vu);
        let ag = governed.vec_to_amplitudes(vg);
        for (i, (x, y)) in au.iter().zip(ag.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "amplitude {i} (re)");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "amplitude {i} (im)");
        }
    }

    /// The scalar leaf kernels are the semantic reference: with `simd`
    /// disabled the same workload must build bitwise-identical diagrams —
    /// same edges (node ids *and* interned weight ids), same statistics
    /// (including the complex-table probe counters), same amplitudes to
    /// the bit. The SIMD paths avoid FMA and re-order nothing, so the two
    /// instantiations are not merely close: they are the same computation.
    #[test]
    fn simd_and_scalar_instantiations_are_bitwise_identical() {
        let mut vectorized = DdManager::new();
        let mut scalar = DdManager::with_config(DdConfig {
            simd: false,
            ..DdConfig::default()
        });

        let (vs, ms) = full_surface_workload(&mut vectorized);
        let (vc, mc) = full_surface_workload(&mut scalar);
        assert_eq!(vs, vc, "state edges must be bitwise identical");
        assert_eq!(ms, mc, "matrix edges must be bitwise identical");
        assert_eq!(vectorized.stats(), scalar.stats());
        assert_eq!(vectorized.cache_stats(), scalar.cache_stats());
        assert_eq!(vectorized.live_vec_nodes(), scalar.live_vec_nodes());
        assert_eq!(vectorized.live_mat_nodes(), scalar.live_mat_nodes());
        assert_eq!(vectorized.distinct_weights(), scalar.distinct_weights());
        assert_eq!(
            vectorized.complex_table_occupancy(),
            scalar.complex_table_occupancy()
        );

        let av = vectorized.vec_to_amplitudes(vs);
        let ac = scalar.vec_to_amplitudes(vc);
        for (i, (x, y)) in av.iter().zip(ac.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "amplitude {i} (re)");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "amplitude {i} (im)");
        }
    }

    /// Satellite: a limit armed *between* top-level operations must flip
    /// the next operation onto the governed instantiation — the dispatch
    /// reads `is_governed()` per call, so nothing is latched at manager
    /// construction.
    #[test]
    fn deadline_armed_mid_run_flips_dispatch_to_governed() {
        let mut dd = DdManager::new();
        assert!(!dd.is_governed());
        // The first gates run on the ungoverned instantiation.
        budget_workload(&mut dd, 10, 0).unwrap();
        // Arm an already-expired deadline between operations…
        dd.set_deadline(Some(std::time::Instant::now()));
        assert!(dd.is_governed());
        // …and the very next operation observes it.
        let h = dd.mat_single_qubit(10, 0, h_gate());
        let s = dd.vec_basis(10, 0);
        assert_eq!(dd.mat_vec_mul(h, s), Err(DdError::DeadlineExceeded));
        // Clearing the deadline restores the ungoverned fast path.
        dd.set_deadline(None);
        assert!(!dd.is_governed());
        budget_workload(&mut dd, 10, 0).unwrap();

        // Same contract for a cancel token registered mid-run.
        let token = crate::CancelToken::new();
        token.cancel();
        dd.set_cancel_token(Some(token));
        assert!(dd.is_governed());
        let err = run_until_err(&mut dd, 10, 4).unwrap_err();
        assert_eq!(err, DdError::Cancelled);
        dd.set_cancel_token(None);
        assert!(!dd.is_governed());
    }

    #[test]
    fn live_node_budget_trips_with_typed_error() {
        let config = DdConfig {
            max_live_nodes: Some(8),
            ..DdConfig::default()
        };
        let mut dd = DdManager::with_config(config);
        match run_until_err(&mut dd, 12, 200) {
            Err(DdError::BudgetExceeded) => {
                let b = dd.last_breach().expect("breach details recorded");
                assert_eq!((b.resource, b.limit), (Resource::LiveNodes, 8));
                assert!(b.observed > 8);
            }
            other => panic!("expected live-node budget error, got {other:?}"),
        }
        // The manager is still consistent: GC runs and fresh work succeeds.
        dd.collect_garbage();
        dd.config.max_live_nodes = None;
        let v = dd.vec_basis(3, 1);
        let h = dd.mat_single_qubit(3, 0, h_gate());
        let _ = dd.mat_vec_mul(h, v).unwrap();
    }

    #[test]
    fn expired_deadline_trips_promptly() {
        let mut dd = DdManager::new();
        dd.set_deadline(Some(std::time::Instant::now()));
        let err = run_until_err(&mut dd, 10, 4).unwrap_err();
        assert_eq!(err, DdError::DeadlineExceeded);
        dd.set_deadline(None);
        budget_workload(&mut dd, 10, 0).unwrap();
    }

    #[test]
    fn cancel_token_unwinds_within_one_interval() {
        let mut dd = DdManager::new();
        let token = crate::CancelToken::new();
        dd.set_cancel_token(Some(token.clone()));
        budget_workload(&mut dd, 10, 0).unwrap();
        token.cancel();
        // An immediate check observes the latch without waiting for the
        // amortized countdown…
        assert_eq!(dd.check_interrupts(), Err(DdError::Cancelled));
        // …and in-flight op streams unwind within one charge interval.
        let err = run_until_err(&mut dd, 10, 50).unwrap_err();
        assert_eq!(err, DdError::Cancelled);
        dd.set_cancel_token(None);
        budget_workload(&mut dd, 10, 0).unwrap();
    }

    #[test]
    fn table_byte_budget_trips_with_typed_error() {
        // Tiny tables so the baseline fits; growth then trips the budget.
        let config = DdConfig {
            compute_table_bits: 4,
            unique_table_bits: 4,
            max_table_bytes: Some(64 * 1024),
            max_live_nodes: None,
            ..DdConfig::default()
        };
        let mut dd = DdManager::with_config(config);
        match run_until_err(&mut dd, 14, 400) {
            Err(DdError::BudgetExceeded) => {
                let b = dd.last_breach().expect("breach details recorded");
                assert_eq!(b.resource, Resource::TableBytes);
                assert!(b.observed > b.limit);
            }
            other => panic!("expected table-byte budget error, got {other:?}"),
        }
    }
}

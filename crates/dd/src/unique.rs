//! Open-addressed unique (hash-consing) tables.
//!
//! The unique tables map `(level, children)` to the canonical node id, so
//! structural equality of sub-diagrams is index equality. They sit on the
//! allocation path of every node construction; like the compute tables
//! they use FxHash instead of the standard `HashMap`'s SipHash, with
//! linear probing and power-of-two capacities.
//!
//! # Slot layout (PR 7, DESIGN.md §13)
//!
//! Slots are bare `(K, NodeId)` pairs with [`NodeId::TERMINAL`] as the
//! *empty* sentinel instead of `Option<(K, NodeId)>`: real entries can
//! never map a key to the terminal (nodes are arena-allocated), so keying
//! emptiness on the id costs nothing and drops the `Option` discriminant +
//! padding from every slot (28 → 24 bytes for vector keys, 44 → 40 for
//! matrix keys) — more slots per cache line on the probe path.
//!
//! Deletions only ever happen at garbage collection, so there are no
//! tombstones: a sweep that kills few nodes removes exactly those keys
//! with backward-shift deletion ([`UniqueTable::remove`]), while a large
//! churn triggers [`UniqueTable::rebuild`] over the survivors, which also
//! re-sizes the table to the live population.

use std::hash::Hash;

use crate::compute::UniqueTableStats;
use crate::edge::NodeId;
use crate::hash::fx_hash;

/// Grow when `len * 4 > capacity * 3` (75 % load).
const MAX_LOAD_NUM: usize = 3;
const MAX_LOAD_DEN: usize = 4;

/// The slot-is-empty sentinel. Legal because the table only ever stores
/// arena-allocated node ids, and the arena can never hand out the
/// terminal's reserved index.
const EMPTY: NodeId = NodeId::TERMINAL;

/// An open-addressed hash-consing table from node keys to node ids.
#[derive(Debug)]
pub(crate) struct UniqueTable<K> {
    /// `(key, id)` pairs; a slot is empty iff its id is [`EMPTY`]. The key
    /// stored in an empty slot is an arbitrary placeholder (`empty_key`).
    slots: Vec<(K, NodeId)>,
    mask: u64,
    len: usize,
    min_bits: u32,
    /// Placeholder key written into vacated slots.
    empty_key: K,
    pub stats: UniqueTableStats,
}

impl<K: Copy + PartialEq + Hash> UniqueTable<K> {
    /// An empty table with `2^bits` slots (also the floor for rebuilds).
    /// `empty_key` is the placeholder stored in vacant slots; any value of
    /// `K` works (vacancy is keyed on the id sentinel, never on the key).
    pub fn with_bits(bits: u32, empty_key: K) -> Self {
        let capacity = 1usize << bits;
        UniqueTable {
            slots: vec![(empty_key, EMPTY); capacity],
            mask: (capacity - 1) as u64,
            len: 0,
            min_bits: bits,
            empty_key,
            stats: UniqueTableStats::default(),
        }
    }

    /// The canonical node for `key`, if one exists.
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<NodeId> {
        self.stats.lookups += 1;
        let mut slot = (fx_hash(key) & self.mask) as usize;
        loop {
            let (k, id) = &self.slots[slot];
            if *id == EMPTY {
                return None;
            }
            if k == key {
                self.stats.hits += 1;
                return Some(*id);
            }
            self.stats.probes += 1;
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Registers `id` as the canonical node for `key`. The caller has
    /// already established the key is absent (via [`get`](Self::get)).
    pub fn insert(&mut self, key: K, id: NodeId) {
        debug_assert!(id != EMPTY, "cannot register the terminal");
        if (self.len + 1) * MAX_LOAD_DEN > self.slots.len() * MAX_LOAD_NUM {
            self.grow();
        }
        self.insert_unchecked(key, id);
        self.len += 1;
    }

    /// Probe-and-place without load accounting (capacity already ensured).
    fn insert_unchecked(&mut self, key: K, id: NodeId) {
        let mut slot = (fx_hash(&key) & self.mask) as usize;
        while self.slots[slot].1 != EMPTY {
            debug_assert!(self.slots[slot].0 != key, "duplicate unique-table insert");
            self.stats.probes += 1;
            slot = (slot + 1) & self.mask as usize;
        }
        self.slots[slot] = (key, id);
    }

    fn grow(&mut self) {
        self.stats.grows += 1;
        let empty = (self.empty_key, EMPTY);
        let old = std::mem::take(&mut self.slots);
        self.slots = vec![empty; old.len() * 2];
        self.mask = (self.slots.len() - 1) as u64;
        for (key, id) in old {
            if id != EMPTY {
                self.insert_unchecked(key, id);
            }
        }
    }

    /// Deletes `key` if present, keeping the probe invariant by
    /// re-placing the cluster that follows the hole (backward-shift
    /// deletion — no tombstones, so lookups never slow down over time).
    pub fn remove(&mut self, key: &K) {
        let mask = self.mask as usize;
        let mut slot = (fx_hash(key) & self.mask) as usize;
        loop {
            let (k, id) = &self.slots[slot];
            if *id == EMPTY {
                return;
            }
            if k == key {
                break;
            }
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = (self.empty_key, EMPTY);
        self.len -= 1;
        let mut next = (slot + 1) & mask;
        while self.slots[next].1 != EMPTY {
            let (k, id) = std::mem::replace(&mut self.slots[next], (self.empty_key, EMPTY));
            let mut dest = (fx_hash(&k) & self.mask) as usize;
            while self.slots[dest].1 != EMPTY {
                dest = (dest + 1) & mask;
            }
            self.slots[dest] = (k, id);
            next = (next + 1) & mask;
        }
    }

    /// Whether rebuilding around `live` survivors would shrink the slot
    /// array. A rebuild that cannot shrink (the floor or the load bound
    /// pins the current capacity) refills every slot for nothing — the
    /// GC uses this to take the per-key removal path instead, which only
    /// touches the freed keys' probe clusters.
    pub fn would_shrink(&self, live: usize) -> bool {
        let mut bits = self.min_bits;
        while (live * MAX_LOAD_DEN) > ((1usize << bits) * MAX_LOAD_NUM) {
            bits += 1;
        }
        (1usize << bits) < self.slots.len()
    }

    /// Replaces the contents with `live` (the nodes surviving a GC sweep),
    /// sized to the live population but never below the configured floor.
    pub fn rebuild(&mut self, live: impl Iterator<Item = (K, NodeId)>) {
        self.stats.rebuilds += 1;
        let entries: Vec<(K, NodeId)> = live.collect();
        let mut bits = self.min_bits;
        // Smallest power of two keeping the load below the growth bound.
        while (entries.len() * MAX_LOAD_DEN) > ((1usize << bits) * MAX_LOAD_NUM) {
            bits += 1;
        }
        self.slots = vec![(self.empty_key, EMPTY); 1usize << bits];
        self.mask = (self.slots.len() - 1) as u64;
        self.len = entries.len();
        for (key, id) in entries {
            self.insert_unchecked(key, id);
        }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Heap bytes held by the slot array (capacity-based, O(1)).
    ///
    /// This is the accounting point behind `DdConfig::max_table_bytes`:
    /// [`grow`](Self::grow) itself stays infallible (failing a rehash
    /// mid-insert would strand a node outside the table), so the byte
    /// budget is enforced by the manager's amortized governor check right
    /// after the growth lands, with overshoot bounded by one doubling.
    pub fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(K, NodeId)>()
    }

    /// Current slot capacity.
    #[cfg(test)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> UniqueTable<(u32, u32)> {
        UniqueTable::with_bits(2, (0, 0)) // 4 slots: growth kicks in fast
    }

    #[test]
    fn get_after_insert() {
        let mut t = table();
        assert_eq!(t.get(&(1, 2)), None);
        t.insert((1, 2), NodeId(7));
        assert_eq!(t.get(&(1, 2)), Some(NodeId(7)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.lookups, 2);
    }

    #[test]
    fn the_placeholder_key_is_still_a_usable_key() {
        // Vacancy is keyed on the id sentinel, so inserting the key that
        // doubles as the empty-slot placeholder must work.
        let mut t = table();
        assert_eq!(t.get(&(0, 0)), None);
        t.insert((0, 0), NodeId(3));
        assert_eq!(t.get(&(0, 0)), Some(NodeId(3)));
        t.remove(&(0, 0));
        assert_eq!(t.get(&(0, 0)), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn grows_past_load_factor() {
        let mut t = table();
        for i in 0..100u32 {
            assert_eq!(t.get(&(i, i + 1)), None);
            t.insert((i, i + 1), NodeId(i));
        }
        assert!(t.stats.grows >= 5, "4-slot table must double repeatedly");
        assert!(t.capacity() >= 128);
        for i in 0..100u32 {
            assert_eq!(t.get(&(i, i + 1)), Some(NodeId(i)), "key {i}");
        }
    }

    #[test]
    fn rebuild_keeps_only_the_given_entries() {
        let mut t = table();
        for i in 0..50u32 {
            t.insert((i, 0), NodeId(i));
        }
        let grown = t.capacity();
        t.rebuild((0..5u32).map(|i| ((i, 0), NodeId(i))));
        assert_eq!(t.len(), 5);
        assert!(
            t.capacity() < grown,
            "rebuild shrinks to the live population"
        );
        for i in 0..5u32 {
            assert_eq!(t.get(&(i, 0)), Some(NodeId(i)));
        }
        for i in 5..50u32 {
            assert_eq!(t.get(&(i, 0)), None, "key {i} must be gone");
        }
        assert_eq!(t.stats.rebuilds, 1);
    }

    #[test]
    fn remove_preserves_probe_chains() {
        let mut t = table();
        for i in 0..40u32 {
            t.insert((i, 0), NodeId(i));
        }
        // Delete every third key; the rest must stay reachable even where
        // the deleted slot sat mid-cluster.
        for i in (0..40u32).step_by(3) {
            t.remove(&(i, 0));
        }
        t.remove(&(999, 0)); // absent key is a no-op
        for i in 0..40u32 {
            let expect = if i % 3 == 0 { None } else { Some(NodeId(i)) };
            assert_eq!(t.get(&(i, 0)), expect, "key {i}");
        }
        assert_eq!(t.len(), 40 - 14);
    }

    #[test]
    fn rebuild_respects_the_capacity_floor() {
        let mut t = table();
        t.rebuild(std::iter::empty());
        assert_eq!(t.capacity(), 4);
    }
}

//! Typed resource-governor errors and the cooperative cancellation token.
//!
//! DD sizes are exponential in the worst case (see the survey *Decision
//! Diagrams for Quantum Computing*); without limits a state-DD explosion
//! ends in OOM. The governor makes the failure *typed* instead: the
//! multiplication/apply recursions charge an amortized counter (see
//! `DdManager::charge`) and unwind with a [`DdError`] once a configured
//! budget, the wall-clock deadline, or a cancellation request trips.
//! Unwinding never corrupts the manager — partially built nodes are
//! unreferenced and reclaimed by the next garbage collection, and every
//! compute-table entry written by an aborted recursion is a complete,
//! valid result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The budgeted resource that was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Live (allocated, not freed) nodes across both arenas
    /// ([`DdConfig::max_live_nodes`](crate::DdConfig::max_live_nodes)).
    LiveNodes,
    /// Bytes held by the arenas, unique tables, and compute tables
    /// ([`DdConfig::max_table_bytes`](crate::DdConfig::max_table_bytes)).
    TableBytes,
}

impl Resource {
    /// Stable lowercase label for CLI output.
    pub fn label(self) -> &'static str {
        match self {
            Resource::LiveNodes => "live-nodes",
            Resource::TableBytes => "table-bytes",
        }
    }
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Details of a tripped budget, recorded on the manager
/// ([`DdManager::last_breach`](crate::DdManager::last_breach)) rather than
/// carried inside [`DdError`]. The governed recursions return
/// `Result<Edge, DdError>` at every level; any payload here would push the
/// `Result` past two registers and tax the *success* path of every
/// multiply, so the error itself stays a bare one-byte discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetBreach {
    /// Which budget tripped.
    pub resource: Resource,
    /// The configured limit.
    pub limit: u64,
    /// The observed consumption at the check point.
    pub observed: u64,
}

/// A typed failure raised by the resource governor inside a DD operation.
///
/// The operation's partial work is abandoned; the manager stays consistent
/// and garbage-collectable, so callers may recover (run GC, relax the
/// budget, retry) or propagate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DdError {
    /// A configured resource budget was exceeded. Which budget, its limit,
    /// and the observed consumption are available from
    /// [`DdManager::last_breach`](crate::DdManager::last_breach).
    BudgetExceeded,
    /// The wall-clock deadline set via
    /// [`DdManager::set_deadline`](crate::DdManager::set_deadline) passed.
    DeadlineExceeded,
    /// The [`CancelToken`] registered via
    /// [`DdManager::set_cancel_token`](crate::DdManager::set_cancel_token)
    /// was triggered.
    Cancelled,
}

impl std::fmt::Display for DdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdError::BudgetExceeded => f.write_str("resource budget exceeded"),
            DdError::DeadlineExceeded => f.write_str("wall-clock deadline exceeded"),
            DdError::Cancelled => f.write_str("cancelled by cooperative token"),
        }
    }
}

impl std::error::Error for DdError {}

/// A cooperative cancellation flag, cloneable across threads.
///
/// Cancelling is a one-way latch: once [`cancel`](Self::cancel) is called
/// every clone observes it and in-flight DD operations unwind with
/// [`DdError::Cancelled`] at their next governor check.
///
/// # Examples
///
/// ```
/// use ddsim_dd::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// A parent whose cancellation this token also observes (but never
    /// latches). Used by the fork-join kernels: each parallel operation
    /// hands its workers a child of the user's token, so a breach in one
    /// worker can unwind its siblings without permanently cancelling the
    /// caller's token.
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that is cancelled when either it or `self` is cancelled.
    /// Cancelling the child never latches the parent.
    pub fn child(&self) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Latches this token (not its parent); every clone observes the
    /// cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether this token or any ancestor has been cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_latches_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
    }

    #[test]
    fn child_tokens_observe_but_never_latch_the_parent() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not latch parent");
        let second = parent.child();
        assert!(!second.is_cancelled());
        parent.cancel();
        assert!(second.is_cancelled(), "parent cancel reaches children");
    }

    #[test]
    fn error_display_names_the_resource() {
        let s = DdError::BudgetExceeded.to_string();
        assert!(s.contains("budget"), "{s}");
        assert!(DdError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(DdError::Cancelled.to_string().contains("cancelled"));
    }
}

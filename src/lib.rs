//! Umbrella crate for the DD-based simulation reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the actual
//! implementation:
//!
//! * [`ddsim_complex`] — complex arithmetic and the tolerance-aware value table
//! * [`ddsim_dd`] — the decision-diagram package (vector & matrix DDs)
//! * [`ddsim_circuit`] — circuit IR and OpenQASM subset I/O
//! * [`ddsim_algorithms`] — benchmark circuit generators (Grover, Shor, …)
//! * [`ddsim_core`] — the simulation engine and the paper's combining strategies

pub use ddsim_algorithms as algorithms;
pub use ddsim_circuit as circuit;
pub use ddsim_complex as complex;
pub use ddsim_core as core;
pub use ddsim_dd as dd;
